//! Periodic multi-core voltage schedules.

use crate::{Result, SchedError};
use mosc_power::TransitionOverhead;

/// Tolerance for comparing times and voltages inside schedules.
pub(crate) const EPS: f64 = 1e-9;

/// One piecewise-constant segment of a core's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Supply voltage (doubles as normalized speed); 0 = core inactive.
    pub voltage: f64,
    /// Duration in seconds.
    pub duration: f64,
}

impl Segment {
    /// Convenience constructor.
    #[must_use]
    pub fn new(voltage: f64, duration: f64) -> Self {
        Self { voltage, duration }
    }
}

/// One core's periodic timeline: segments played in order, then repeated.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSchedule {
    segments: Vec<Segment>,
}

impl CoreSchedule {
    /// Builds a core timeline, dropping zero-length segments and merging
    /// consecutive equal-voltage segments.
    ///
    /// # Errors
    /// Rejects empty timelines, negative durations and non-finite values.
    pub fn new(segments: Vec<Segment>) -> Result<Self> {
        if segments.is_empty() {
            return Err(SchedError::Invalid { what: "core timeline has no segments".into() });
        }
        let mut cleaned: Vec<Segment> = Vec::with_capacity(segments.len());
        for s in segments {
            if !s.voltage.is_finite() || !s.duration.is_finite() || s.voltage < 0.0 {
                return Err(SchedError::Invalid {
                    what: format!("segment {s:?} has non-finite or negative values"),
                });
            }
            if s.duration < -EPS {
                return Err(SchedError::Invalid {
                    what: format!("segment {s:?} has negative duration"),
                });
            }
            if s.duration <= EPS {
                continue;
            }
            match cleaned.last_mut() {
                Some(last) if (last.voltage - s.voltage).abs() < EPS => last.duration += s.duration,
                _ => cleaned.push(s),
            }
        }
        if cleaned.is_empty() {
            return Err(SchedError::Invalid {
                what: "core timeline has only zero-length segments".into(),
            });
        }
        Ok(Self { segments: cleaned })
    }

    /// Single-mode timeline.
    ///
    /// # Errors
    /// Rejects non-finite/negative values.
    pub fn constant(voltage: f64, period: f64) -> Result<Self> {
        Self::new(vec![Segment::new(voltage, period)])
    }

    /// The segments.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total duration of one period of this timeline.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Work completed per period (`Σ v·l`).
    #[must_use]
    pub fn work(&self) -> f64 {
        self.segments.iter().map(|s| s.voltage * s.duration).sum()
    }

    /// `true` when voltages are non-decreasing across the timeline.
    #[must_use]
    pub fn is_non_decreasing(&self) -> bool {
        self.segments.windows(2).all(|w| w[0].voltage <= w[1].voltage + EPS)
    }

    /// Number of voltage transitions per period, counting the wrap-around
    /// from the last segment back to the first.
    #[must_use]
    pub fn transitions_per_period(&self) -> usize {
        if self.segments.len() <= 1 {
            return 0;
        }
        let mut n = self.segments.len() - 1;
        let first = self.segments.first().expect("non-empty");
        let last = self.segments.last().expect("non-empty");
        if (first.voltage - last.voltage).abs() > EPS {
            n += 1;
        }
        n
    }

    /// Voltage at time `t` within the period (`t` taken modulo the period).
    #[must_use]
    pub fn voltage_at(&self, t: f64) -> f64 {
        let period = self.period();
        let mut t = t % period;
        if t < 0.0 {
            t += period;
        }
        let mut acc = 0.0;
        for s in &self.segments {
            acc += s.duration;
            if t < acc - EPS {
                return s.voltage;
            }
        }
        self.segments.last().expect("non-empty").voltage
    }

    /// Sorted copy (ascending voltage) — the per-core piece of the step-up
    /// reordering of Definition 2.
    #[must_use]
    pub fn sorted_by_voltage(&self) -> Self {
        let mut segs = self.segments.clone();
        segs.sort_by(|a, b| a.voltage.partial_cmp(&b.voltage).expect("finite voltages"));
        Self::new(segs).expect("sorted copy of a valid timeline is valid")
    }

    /// Compressed copy: every duration divided by `m` (the per-core piece of
    /// the m-Oscillating transform of Definition 3).
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn compressed(&self, m: usize) -> Self {
        assert!(m > 0, "oscillation factor must be at least 1");
        let segs =
            self.segments.iter().map(|s| Segment::new(s.voltage, s.duration / m as f64)).collect();
        Self::new(segs).expect("compression preserves validity")
    }

    /// Cyclic shift by `offset` seconds: the timeline that plays what this
    /// one plays at time `t + offset`. Used by the PCO phase search.
    #[must_use]
    pub fn shifted(&self, offset: f64) -> Self {
        let period = self.period();
        let mut offset = offset % period;
        if offset < 0.0 {
            offset += period;
        }
        if offset <= EPS || offset >= period - EPS {
            return self.clone();
        }
        // Find the split point and rotate.
        let mut acc = 0.0;
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len() + 1);
        let mut split_idx = 0;
        let mut split_within = 0.0;
        for (i, s) in self.segments.iter().enumerate() {
            if offset < acc + s.duration - EPS {
                split_idx = i;
                split_within = offset - acc;
                break;
            }
            acc += s.duration;
            split_idx = i + 1;
        }
        if split_idx >= self.segments.len() {
            return self.clone();
        }
        // Tail of the split segment first…
        let s = self.segments[split_idx];
        if s.duration - split_within > EPS {
            out.push(Segment::new(s.voltage, s.duration - split_within));
        }
        // …then everything after, then everything before, then the head.
        out.extend_from_slice(&self.segments[split_idx + 1..]);
        out.extend_from_slice(&self.segments[..split_idx]);
        if split_within > EPS {
            out.push(Segment::new(s.voltage, split_within));
        }
        Self::new(out).expect("rotation preserves validity")
    }
}

/// A periodic multi-core schedule: one [`CoreSchedule`] per core, all with
/// the same period, played [`Schedule::repetitions`] times per full period.
///
/// The repetition count carries the structure of Definition 3's
/// m-Oscillating schedules explicitly: [`Schedule::oscillated`] compresses
/// the stored block by `m` *and* multiplies `repetitions` by `m`, so the
/// full period is invariant and evaluators can exploit the repeated-block
/// structure (`K = K_block^m` by binary squaring) instead of walking `2m`
/// materialized segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    cores: Vec<CoreSchedule>,
    /// Period of the stored block (every core's timeline duration).
    period: f64,
    /// How many times the block repeats per full period (≥ 1).
    repetitions: usize,
}

impl Schedule {
    /// Builds a schedule from per-core timelines (one repetition).
    ///
    /// # Errors
    /// Rejects empty core lists and mismatched per-core periods.
    pub fn new(cores: Vec<CoreSchedule>) -> Result<Self> {
        if cores.is_empty() {
            return Err(SchedError::Invalid { what: "schedule has no cores".into() });
        }
        let period = cores[0].period();
        if period <= EPS {
            return Err(SchedError::Invalid { what: "schedule period must be positive".into() });
        }
        for (i, c) in cores.iter().enumerate() {
            let p = c.period();
            if (p - period).abs() > EPS * period.max(1.0) {
                return Err(SchedError::Invalid {
                    what: format!("core {i} period {p} differs from core 0 period {period}"),
                });
            }
        }
        Ok(Self { cores, period, repetitions: 1 })
    }

    /// All cores at constant voltages for `period` seconds.
    ///
    /// # Errors
    /// Propagates timeline validation.
    pub fn constant(voltages: &[f64], period: f64) -> Result<Self> {
        let cores = voltages
            .iter()
            .map(|&v| CoreSchedule::constant(v, period))
            .collect::<Result<Vec<_>>>()?;
        Self::new(cores)
    }

    /// Two-mode step-up schedule: each core runs `v_low[i]` for
    /// `(1 − ratio_high[i])·period` then `v_high[i]` for the rest. This is
    /// the shape Algorithm 2 (AO) constructs.
    ///
    /// ```
    /// use mosc_sched::Schedule;
    /// let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.5, 0.25], 0.1).unwrap();
    /// assert!(s.is_step_up());
    /// assert!((s.throughput() - (0.95 + 0.775) / 2.0).abs() < 1e-12);
    /// // Definition 3: compress every interval by m, repeat the block m
    /// // times — the full period is invariant, the block shrinks.
    /// let o = s.oscillated(4);
    /// assert_eq!(o.repetitions(), 4);
    /// assert!((o.block_period() - 0.025).abs() < 1e-12);
    /// assert!((o.period() - 0.1).abs() < 1e-12);
    /// ```
    ///
    /// # Errors
    /// Rejects mismatched slice lengths and ratios outside `[0, 1]`.
    pub fn two_mode(
        v_low: &[f64],
        v_high: &[f64],
        ratio_high: &[f64],
        period: f64,
    ) -> Result<Self> {
        if v_low.len() != v_high.len() || v_low.len() != ratio_high.len() {
            return Err(SchedError::Invalid {
                what: "two_mode slices must have equal lengths".into(),
            });
        }
        let cores = v_low
            .iter()
            .zip(v_high)
            .zip(ratio_high)
            .map(|((&lo, &hi), &r)| {
                if !(0.0..=1.0 + EPS).contains(&r) {
                    return Err(SchedError::Invalid {
                        what: format!("ratio_high {r} outside [0, 1]"),
                    });
                }
                let r = r.clamp(0.0, 1.0);
                CoreSchedule::new(vec![
                    Segment::new(lo, (1.0 - r) * period),
                    Segment::new(hi, r * period),
                ])
            })
            .collect::<Result<Vec<_>>>()?;
        Self::new(cores)
    }

    /// Number of cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Full period in seconds: the stored block's duration times the
    /// repetition count.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period * self.repetitions as f64
    }

    /// Duration of the repeating block (`period() / repetitions()`); equal
    /// to [`Schedule::period`] for unrepeated schedules.
    #[must_use]
    pub fn block_period(&self) -> f64 {
        self.period
    }

    /// How many times the stored block repeats per full period.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Schedule that plays this one's full period `m` times in a row —
    /// thermally identical in the stable status, but carried structurally
    /// so evaluation stays `O(log m)` instead of `O(m)`.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn repeated(&self, m: usize) -> Self {
        assert!(m > 0, "repetition count must be at least 1");
        Self { cores: self.cores.clone(), period: self.period, repetitions: self.repetitions * m }
    }

    /// Per-core timelines.
    #[must_use]
    pub fn cores(&self) -> &[CoreSchedule] {
        &self.cores
    }

    /// One core's timeline.
    #[must_use]
    pub fn core(&self, i: usize) -> &CoreSchedule {
        &self.cores[i]
    }

    /// Replaces one core's timeline (within the repeating block).
    ///
    /// # Errors
    /// Rejects a timeline whose period differs from the block period.
    pub fn with_core(&self, i: usize, core: CoreSchedule) -> Result<Self> {
        let mut cores = self.cores.clone();
        cores[i] = core;
        let mut s = Self::new(cores)?;
        s.repetitions = self.repetitions;
        Ok(s)
    }

    /// Chip-wide throughput per eq. (5): the average per-core speed,
    /// `Σ_i work_i / (N·t_p)`.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let total: f64 = self.cores.iter().map(CoreSchedule::work).sum();
        total / (self.n_cores() as f64 * self.period)
    }

    /// Throughput after deducting DVFS stall losses: each transition halts
    /// the transitioning core for `τ`, losing `v_before·τ/2 + v_after·τ/2`
    /// work (so one full low↔high round trip loses `(v_L + v_H)·τ`, the
    /// paper's Section V accounting).
    #[must_use]
    pub fn throughput_with_overhead(&self, overhead: &TransitionOverhead) -> f64 {
        if overhead.is_zero() {
            return self.throughput();
        }
        let mut total = 0.0;
        for core in &self.cores {
            total += core.work();
            let segs = core.segments();
            if segs.len() > 1 {
                for w in segs.windows(2) {
                    total -= (w[0].voltage + w[1].voltage) * 0.5 * overhead.tau;
                }
                let first = segs.first().expect("non-empty");
                let last = segs.last().expect("non-empty");
                if (first.voltage - last.voltage).abs() > EPS {
                    total -= (first.voltage + last.voltage) * 0.5 * overhead.tau;
                }
            }
        }
        (total / (self.n_cores() as f64 * self.period)).max(0.0)
    }

    /// `true` when this is a step-up schedule per Definition 1 (every core's
    /// voltage non-decreasing over the *full* period). A repeated block is
    /// only globally non-decreasing when every core is constant — the wrap
    /// from one block into the next steps back down otherwise.
    #[must_use]
    pub fn is_step_up(&self) -> bool {
        self.block_is_step_up() && (self.repetitions == 1 || self.max_segments_per_core() <= 1)
    }

    /// `true` when the repeating block is step-up (every core non-decreasing
    /// within the block). In the periodic stable status the trace is
    /// block-periodic, so Theorem 1 applies per block: the peak sits at the
    /// block boundary and the exact evaluation path is valid whenever the
    /// *block* is step-up, regardless of the repetition count.
    #[must_use]
    pub fn block_is_step_up(&self) -> bool {
        self.cores.iter().all(CoreSchedule::is_non_decreasing)
    }

    /// The corresponding step-up schedule of Definition 2: per core, the same
    /// segments reordered by non-decreasing voltage. For a repeated schedule
    /// the reordering applies to the full period — the `m` copies of each
    /// voltage merge into one segment of `m`-fold duration — so the result
    /// always has a single repetition.
    #[must_use]
    pub fn to_step_up(&self) -> Self {
        let reps = self.repetitions as f64;
        let cores = self
            .cores
            .iter()
            .map(|c| {
                let sorted = c.sorted_by_voltage();
                if self.repetitions == 1 {
                    return sorted;
                }
                let segs = sorted
                    .segments()
                    .iter()
                    .map(|s| Segment::new(s.voltage, s.duration * reps))
                    .collect();
                CoreSchedule::new(segs).expect("scaling preserves validity")
            })
            .collect();
        Self::new(cores).expect("reordering preserves validity")
    }

    /// The m-Oscillating schedule of Definition 3: every interval length
    /// divided by `m`, repeated `m` times. The compression is materialized
    /// in the stored block while the repetition factor is carried on
    /// [`Schedule::repetitions`], so the full period is invariant and
    /// evaluators see the repeated structure instead of `2m` segments.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    #[must_use]
    pub fn oscillated(&self, m: usize) -> Self {
        let cores = self.cores.iter().map(|c| c.compressed(m)).collect();
        let mut s = Self::new(cores).expect("compression preserves validity");
        s.repetitions = self.repetitions * m;
        s
    }

    /// Copy with core `i` cyclically shifted by `offset` seconds within the
    /// block (PCO's spatial interleaving move).
    #[must_use]
    pub fn with_shifted_core(&self, i: usize, offset: f64) -> Self {
        let mut cores = self.cores.clone();
        cores[i] = cores[i].shifted(offset);
        let mut s = Self::new(cores).expect("shifting preserves validity");
        s.repetitions = self.repetitions;
        s
    }

    /// Decomposes the *full* period into global state intervals: the block
    /// decomposition of [`Schedule::block_intervals`], materialized once per
    /// repetition. Returns `(per-core voltages, length)` pairs covering
    /// exactly one full period — the `O(m)` representation the period-map
    /// kernel avoids, retained for reference evaluation and analyzers.
    #[must_use]
    pub fn state_intervals(&self) -> Vec<(Vec<f64>, f64)> {
        let block = self.block_intervals();
        if self.repetitions == 1 {
            return block;
        }
        let mut out = Vec::with_capacity(block.len() * self.repetitions);
        for _ in 0..self.repetitions {
            out.extend(block.iter().cloned());
        }
        out
    }

    /// Decomposes the repeating block into global state intervals: at each
    /// boundary where *any* core switches, a new interval starts. Returns
    /// `(per-core voltages, length)` pairs covering exactly one block.
    #[must_use]
    pub fn block_intervals(&self) -> Vec<(Vec<f64>, f64)> {
        // Collect all boundaries.
        let mut bounds: Vec<f64> = vec![0.0, self.period];
        for core in &self.cores {
            let mut acc = 0.0;
            for s in core.segments() {
                acc += s.duration;
                if acc < self.period - EPS {
                    bounds.push(acc);
                }
            }
        }
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        bounds.dedup_by(|a, b| (*a - *b).abs() < EPS);

        let mut out = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2) {
            let (start, end) = (w[0], w[1]);
            if end - start <= EPS {
                continue;
            }
            let mid = 0.5 * (start + end);
            let voltages: Vec<f64> = self.cores.iter().map(|c| c.voltage_at(mid)).collect();
            out.push((voltages, end - start));
        }
        out
    }

    /// Maximum number of segments on any single core.
    #[must_use]
    pub fn max_segments_per_core(&self) -> usize {
        self.cores.iter().map(|c| c.segments().len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core() -> Schedule {
        Schedule::new(vec![
            CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)]).unwrap(),
            CoreSchedule::new(vec![Segment::new(1.3, 0.02), Segment::new(0.6, 0.08)]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_merges_and_drops_segments() {
        let c = CoreSchedule::new(vec![
            Segment::new(0.6, 0.1),
            Segment::new(0.6, 0.2),
            Segment::new(1.3, 0.0),
            Segment::new(1.0, 0.1),
        ])
        .unwrap();
        assert_eq!(c.segments().len(), 2);
        assert!((c.segments()[0].duration - 0.3).abs() < 1e-12);
        assert!((c.period() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        assert!(CoreSchedule::new(vec![]).is_err());
        assert!(CoreSchedule::new(vec![Segment::new(0.6, -1.0)]).is_err());
        assert!(CoreSchedule::new(vec![Segment::new(-0.5, 1.0)]).is_err());
        assert!(CoreSchedule::new(vec![Segment::new(f64::NAN, 1.0)]).is_err());
        assert!(CoreSchedule::new(vec![Segment::new(0.6, 0.0)]).is_err());
        assert!(Schedule::new(vec![]).is_err());
        // Mismatched periods.
        let a = CoreSchedule::constant(1.0, 1.0).unwrap();
        let b = CoreSchedule::constant(1.0, 2.0).unwrap();
        assert!(Schedule::new(vec![a, b]).is_err());
    }

    #[test]
    fn throughput_eq5() {
        let s = two_core();
        // core0: (0.6·0.05 + 1.3·0.05) = 0.095; core1: (1.3·0.02 + 0.6·0.08) = 0.074
        // THR = (0.095+0.074) / (2·0.1) = 0.845
        assert!((s.throughput() - 0.845).abs() < 1e-12);
    }

    #[test]
    fn throughput_overhead_deduction() {
        let s = two_core();
        let tau = mosc_power::TransitionOverhead::new(1e-3).unwrap();
        // Each core has 2 transitions (internal + wrap), each pair costing
        // (0.6+1.3)·τ work → total loss 2·1.9e-3.
        let expected = 0.845 - 2.0 * 1.9e-3 / (2.0 * 0.1);
        assert!((s.throughput_with_overhead(&tau) - expected).abs() < 1e-12);
        // Zero overhead falls back to plain throughput.
        let zero = mosc_power::TransitionOverhead::zero();
        assert_eq!(s.throughput_with_overhead(&zero), s.throughput());
        // Constant schedules lose nothing.
        let c = Schedule::constant(&[1.0, 1.0], 0.1).unwrap();
        assert_eq!(c.throughput_with_overhead(&tau), c.throughput());
    }

    #[test]
    fn step_up_detection_and_transform() {
        let s = two_core();
        assert!(!s.is_step_up()); // core1 goes high→low
        let up = s.to_step_up();
        assert!(up.is_step_up());
        // Same work, same period (Definition 2 preserves interval contents).
        assert!((up.throughput() - s.throughput()).abs() < 1e-12);
        assert_eq!(up.period(), s.period());
        // Idempotent.
        assert_eq!(up.to_step_up(), up);
    }

    #[test]
    fn oscillation_compresses_lengths() {
        let s = two_core();
        let o = s.oscillated(4);
        assert_eq!(o.repetitions(), 4);
        assert!((o.block_period() - 0.025).abs() < 1e-12);
        // The full period is invariant under Definition 3.
        assert!((o.period() - s.period()).abs() < 1e-12);
        assert!((o.throughput() - s.throughput()).abs() < 1e-12);
        // Oscillation composes: (S^4)^2 = S^8.
        assert_eq!(o.oscillated(2).repetitions(), 8);
    }

    #[test]
    fn repeated_carries_structure() {
        let s = two_core();
        let r = s.repeated(3);
        assert_eq!(r.repetitions(), 3);
        assert!((r.period() - 0.3).abs() < 1e-12);
        assert!((r.block_period() - 0.1).abs() < 1e-12);
        // Same average speed; state intervals materialize all repetitions.
        assert!((r.throughput() - s.throughput()).abs() < 1e-12);
        assert_eq!(r.state_intervals().len(), 3 * s.state_intervals().len());
        assert_eq!(r.block_intervals().len(), s.block_intervals().len());
        // A repeated non-constant block is not globally step-up.
        let up = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.5, 0.5], 0.1).unwrap();
        assert!(up.is_step_up());
        assert!(up.repeated(2).block_is_step_up());
        assert!(!up.repeated(2).is_step_up());
        // A repeated constant schedule stays step-up.
        let konst = Schedule::constant(&[1.0, 1.0], 0.1).unwrap();
        assert!(konst.repeated(5).is_step_up());
        // to_step_up of a repeated block merges the copies.
        let merged = up.repeated(2).to_step_up();
        assert_eq!(merged.repetitions(), 1);
        assert!((merged.period() - 0.2).abs() < 1e-12);
        assert!((merged.throughput() - up.throughput()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "repetition count")]
    fn repeated_rejects_zero() {
        let _ = two_core().repeated(0);
    }

    #[test]
    #[should_panic(expected = "oscillation factor")]
    fn oscillation_rejects_zero() {
        let _ = two_core().oscillated(0);
    }

    #[test]
    fn voltage_at_lookup() {
        let c = CoreSchedule::new(vec![Segment::new(0.6, 1.0), Segment::new(1.3, 2.0)]).unwrap();
        assert_eq!(c.voltage_at(0.5), 0.6);
        assert_eq!(c.voltage_at(1.5), 1.3);
        assert_eq!(c.voltage_at(2.9), 1.3);
        // Wraps modulo the period.
        assert_eq!(c.voltage_at(3.5), 0.6);
        assert_eq!(c.voltage_at(-0.5), 1.3);
    }

    #[test]
    fn shift_rotates_timeline() {
        let c = CoreSchedule::new(vec![Segment::new(0.6, 1.0), Segment::new(1.3, 2.0)]).unwrap();
        let s = c.shifted(1.0);
        // shifted(1.0) plays voltage_at(t+1): starts with the 1.3 block.
        assert_eq!(s.voltage_at(0.0), 1.3);
        assert_eq!(s.voltage_at(1.9), 1.3);
        assert_eq!(s.voltage_at(2.5), 0.6);
        assert!((s.period() - 3.0).abs() < 1e-12);
        assert!((s.work() - c.work()).abs() < 1e-12);
        // Mid-segment split.
        let s2 = c.shifted(0.5);
        assert_eq!(s2.voltage_at(0.0), 0.6);
        assert_eq!(s2.voltage_at(0.4), 0.6);
        assert_eq!(s2.voltage_at(0.6), 1.3);
        assert!((s2.period() - 3.0).abs() < 1e-9);
        // Zero and full-period shifts are identity.
        assert_eq!(c.shifted(0.0), c);
        assert_eq!(c.shifted(3.0), c);
        // Negative shifts wrap.
        assert_eq!(c.shifted(-2.0).voltage_at(0.0), c.voltage_at(-2.0));
    }

    #[test]
    fn state_interval_decomposition() {
        let s = two_core();
        let ivs = s.state_intervals();
        // Boundaries at 0.02 and 0.05 → 3 intervals.
        assert_eq!(ivs.len(), 3);
        let total: f64 = ivs.iter().map(|(_, l)| l).sum();
        assert!((total - 0.1).abs() < 1e-12);
        assert_eq!(ivs[0].0, vec![0.6, 1.3]);
        assert_eq!(ivs[1].0, vec![0.6, 0.6]);
        assert_eq!(ivs[2].0, vec![1.3, 0.6]);
    }

    #[test]
    fn two_mode_constructor() {
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.25, 1.0], 0.2).unwrap();
        assert!(s.is_step_up());
        // Core 1 is pure high-voltage.
        assert_eq!(s.core(1).segments().len(), 1);
        assert!((s.core(0).segments()[1].duration - 0.05).abs() < 1e-12);
        // Invalid ratios rejected.
        assert!(Schedule::two_mode(&[0.6], &[1.3], &[1.5], 0.2).is_err());
        assert!(Schedule::two_mode(&[0.6], &[1.3, 1.3], &[0.5], 0.2).is_err());
    }

    #[test]
    fn transitions_per_period_counts_wrap() {
        let c = CoreSchedule::new(vec![Segment::new(0.6, 1.0), Segment::new(1.3, 1.0)]).unwrap();
        assert_eq!(c.transitions_per_period(), 2);
        let konst = CoreSchedule::constant(1.0, 1.0).unwrap();
        assert_eq!(konst.transitions_per_period(), 0);
        let updown = CoreSchedule::new(vec![
            Segment::new(0.6, 1.0),
            Segment::new(1.3, 1.0),
            Segment::new(0.6, 1.0),
        ])
        .unwrap();
        // 0.6→1.3, 1.3→0.6, wrap 0.6→0.6 (free).
        assert_eq!(updown.transitions_per_period(), 2);
    }

    #[test]
    fn with_core_and_with_shifted_core() {
        let s = two_core();
        let replaced = s.with_core(0, CoreSchedule::constant(1.0, 0.1).unwrap()).unwrap();
        assert_eq!(replaced.core(0).segments().len(), 1);
        assert!(s.with_core(0, CoreSchedule::constant(1.0, 0.3).unwrap()).is_err());
        let shifted = s.with_shifted_core(1, 0.02);
        assert!((shifted.throughput() - s.throughput()).abs() < 1e-12);
    }

    #[test]
    fn max_segments() {
        assert_eq!(two_core().max_segments_per_core(), 2);
        assert_eq!(Schedule::constant(&[1.0], 1.0).unwrap().max_segments_per_core(), 1);
    }
}
