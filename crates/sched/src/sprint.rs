//! Computational sprinting under the peak-temperature cap.
//!
//! The paper's intro cites the dark-silicon problem (Hardavellas et al.):
//! thermal capacitance lets a chip briefly run *above* its sustainable
//! operating point. This module answers the two questions a sprint
//! controller needs, using the same exact LTI machinery as the periodic
//! analysis:
//!
//! * [`sprint_duration`] — starting from a thermal state, how long can a
//!   boost voltage assignment run before any core crosses `T_max`?
//! * [`rest_duration`] — after a sprint, how long at a rest assignment until
//!   the chip re-enters a target envelope?
//!
//! Both are bisections on the exact transient `T(t) = T∞ + e^{At}(T0 − T∞)`,
//! evaluated per candidate time through the model's cached propagators. The
//! `sprinting` experiment compares sprint/rest duty cycling against AO's
//! sustained schedule at equal `T_max`.

use crate::{Result, SchedError};
use mosc_linalg::Vector;
use mosc_power::PowerLike;
use mosc_thermal::ThermalModel;

/// Maximum bisection iterations (resolves the duration to ~1e-12 relative).
const BISECT_ITERS: usize = 50;

/// How long the boost assignment can run from `t0` before any core exceeds
/// `t_max`. Returns `None` when the boost steady state never crosses
/// (sprinting is unbounded — the "boost" is sustainable), `Some(0.0)` when
/// some core is already at/over the limit.
///
/// # Errors
/// Dimension mismatches or solver failures.
pub fn sprint_duration<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    t0: &Vector,
    boost_voltages: &[f64],
    t_max: f64,
) -> Result<Option<f64>> {
    let psi = power.psi_profile_of(boost_voltages);
    let t_inf = model.steady_state(&psi)?;
    if model.max_core_temp(t0) >= t_max - 1e-12 {
        return Ok(Some(0.0));
    }
    if model.max_core_temp(&t_inf) <= t_max {
        return Ok(None); // sustainable forever
    }
    // Bracket: grow until crossing. Heating toward a hotter steady state
    // makes the max-core temperature cross t_max exactly once.
    let mut hi = 1e-3;
    let mut guard = 0;
    loop {
        let t = model.advance(t0, &psi, hi)?;
        if model.max_core_temp(&t) > t_max {
            break;
        }
        hi *= 2.0;
        guard += 1;
        if guard > 60 {
            // Numerically indistinguishable from sustainable.
            return Ok(None);
        }
    }
    let mut lo = if hi > 1e-3 { hi / 2.0 } else { 0.0 };
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        let t = model.advance(t0, &psi, mid)?;
        if model.max_core_temp(&t) > t_max {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(lo))
}

/// How long the rest assignment needs from `t0` until every core is at or
/// below `target`. Returns `Some(0.0)` when already inside, `None` when the
/// rest steady state itself stays above `target` (no amount of resting
/// reaches it).
///
/// # Errors
/// Dimension mismatches or solver failures.
pub fn rest_duration<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    t0: &Vector,
    rest_voltages: &[f64],
    target: f64,
) -> Result<Option<f64>> {
    let psi = power.psi_profile_of(rest_voltages);
    let t_inf = model.steady_state(&psi)?;
    if model.max_core_temp(t0) <= target {
        return Ok(Some(0.0));
    }
    if model.max_core_temp(&t_inf) > target - 1e-12 {
        return Ok(None);
    }
    let mut hi = 1e-3;
    let mut guard = 0;
    loop {
        let t = model.advance(t0, &psi, hi)?;
        if model.max_core_temp(&t) <= target {
            break;
        }
        hi *= 2.0;
        guard += 1;
        if guard > 60 {
            return Err(SchedError::Invalid {
                what:
                    "rest_duration failed to bracket (target too close to the rest steady state?)"
                        .into(),
            });
        }
    }
    let mut lo = if hi > 1e-3 { hi / 2.0 } else { 0.0 };
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        let t = model.advance(t0, &psi, mid)?;
        if model.max_core_temp(&t) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

/// Outcome of a sprint/rest duty-cycle simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintCycle {
    /// Sprint phase length (s).
    pub sprint_len: f64,
    /// Rest phase length (s).
    pub rest_len: f64,
    /// Average per-core speed over the converged cycle.
    pub avg_speed: f64,
    /// Peak temperature over the converged cycle (K above ambient).
    pub peak: f64,
}

/// Simulates repeated sprint-to-`t_max` / rest-to-`target` cycles from
/// ambient until the cycle lengths converge, returning the limiting cycle.
///
/// # Errors
/// Propagates solver failures; fails when the rest assignment cannot reach
/// `target`.
pub fn limit_cycle<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    boost_voltages: &[f64],
    rest_voltages: &[f64],
    t_max: f64,
    target: f64,
) -> Result<SprintCycle> {
    let n = model.n_cores() as f64;
    let boost_speed: f64 = boost_voltages.iter().sum::<f64>() / n;
    let rest_speed: f64 = rest_voltages.iter().sum::<f64>() / n;
    let psi_boost = power.psi_profile_of(boost_voltages);
    let psi_rest = power.psi_profile_of(rest_voltages);

    // The package's slowest eigenmode sets how long the cycle-to-cycle drift
    // lasts (the sink keeps charging for several time constants even while
    // individual sprint/rest cycles look stable), so the convergence test
    // only arms after the transient has had time to die out.
    let slowest_tau = -1.0 / model.eigenvalues().max();
    let warmup = 4.0 * slowest_tau;

    let mut state = Vector::zeros(model.n_nodes());
    let mut prev = (f64::NAN, f64::NAN);
    let mut elapsed = 0.0;
    let mut last = None;
    for _ in 0..100_000 {
        let sprint =
            sprint_duration(model, power, &state, boost_voltages, t_max)?.ok_or_else(|| {
                SchedError::Invalid {
                    what: "boost assignment is sustainable; no sprint cycle exists".into(),
                }
            })?;
        state = model.advance(&state, &psi_boost, sprint)?;
        let peak = model.max_core_temp(&state);
        let rest =
            rest_duration(model, power, &state, rest_voltages, target)?.ok_or_else(|| {
                SchedError::Invalid {
                    what: "rest assignment cannot reach the target temperature".into(),
                }
            })?;
        state = model.advance(&state, &psi_rest, rest)?;
        let cycle = sprint + rest;
        if cycle <= 0.0 {
            return Err(SchedError::Invalid { what: "degenerate sprint cycle".into() });
        }
        elapsed += cycle;
        let avg = (boost_speed * sprint + rest_speed * rest) / cycle;
        let converged = (sprint - prev.0).abs() < 1e-4 * cycle
            && (rest - prev.1).abs() < 1e-4 * cycle
            && elapsed > warmup;
        last = Some(SprintCycle { sprint_len: sprint, rest_len: rest, avg_speed: avg, peak });
        if converged {
            break;
        }
        prev = (sprint, rest);
    }
    last.ok_or_else(|| SchedError::Invalid { what: "sprint cycle never ran".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Platform, PlatformSpec};

    fn platform() -> Platform {
        Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).expect("platform")
    }

    fn small_platform() -> Platform {
        // 3 cores at 50 C: all-max unsustainable, cheap node count.
        Platform::build(&PlatformSpec::paper(1, 3, 2, 50.0)).expect("platform")
    }

    #[test]
    fn cold_chip_can_sprint_then_not() {
        let p = platform();
        let boost = vec![1.3; 6];
        let t0 = Vector::zeros(p.thermal().n_nodes());
        let d = sprint_duration(p.thermal(), p.power(), &t0, &boost, p.t_max())
            .unwrap()
            .expect("all-max is unsustainable on 6 cores at 55C");
        assert!(d > 0.1, "cold sprint should last a while, got {d}");
        // At the crossing point, the budget is exhausted.
        let psi = p.psi_profile(&boost);
        let at_end = p.thermal().advance(&t0, &psi, d).unwrap();
        assert!((p.thermal().max_core_temp(&at_end) - p.t_max()).abs() < 1e-6);
        let d2 = sprint_duration(p.thermal(), p.power(), &at_end, &boost, p.t_max()).unwrap();
        assert!(d2.expect("still bounded") < 1e-6, "no budget left at T_max");
    }

    #[test]
    fn sustainable_boost_reports_none() {
        // 2-core at 65C sustains all-max: sprint is unbounded.
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let t0 = Vector::zeros(p.thermal().n_nodes());
        let d = sprint_duration(p.thermal(), p.power(), &t0, &[1.3, 1.3], p.t_max()).unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn rest_recovers_headroom() {
        let p = platform();
        let hot = p.thermal().steady_state(&p.psi_profile(&[1.3; 6])).unwrap();
        let rest = vec![0.6; 6];
        let target = 0.5 * p.t_max();
        let d = rest_duration(p.thermal(), p.power(), &hot, &rest, target)
            .unwrap()
            .expect("0.6 V steady state is below half of T_max");
        assert!(d > 0.0);
        let after = p.thermal().advance(&hot, &p.psi_profile(&rest), d).unwrap();
        assert!(p.thermal().max_core_temp(&after) <= target + 1e-6);
        // Unreachable target reports None.
        let impossible = rest_duration(p.thermal(), p.power(), &hot, &rest, -1.0).unwrap();
        assert!(impossible.is_none());
        // Already-cool chip needs no rest.
        let cool = Vector::zeros(p.thermal().n_nodes());
        assert_eq!(rest_duration(p.thermal(), p.power(), &cool, &rest, target).unwrap(), Some(0.0));
    }

    #[test]
    fn limit_cycle_converges_and_respects_tmax() {
        let p = small_platform();
        let cycle =
            limit_cycle(p.thermal(), p.power(), &[1.3; 3], &[0.6; 3], p.t_max(), p.t_max() - 5.0)
                .unwrap();
        assert!(cycle.sprint_len > 0.0 && cycle.rest_len > 0.0);
        assert!(cycle.peak <= p.t_max() + 1e-6);
        assert!(cycle.avg_speed > 0.6 && cycle.avg_speed < 1.3);
    }

    #[test]
    fn sprinting_cannot_beat_the_continuous_sustained_optimum() {
        // The thermodynamic point: duty-cycling between extremes averages
        // below the sustained optimum at the same T_max (ψ is convex, so the
        // extreme mix wastes power; Theorem 3's energy logic in sprint form).
        let p = small_platform();
        let cycle =
            limit_cycle(p.thermal(), p.power(), &[1.3; 3], &[0.6; 3], p.t_max(), p.t_max() - 5.0)
                .unwrap();
        // Continuous sustained optimum on this platform (every core pinned
        // at T_max) is an upper bound for any T_max-respecting policy.
        // 3-core at 50 C: ideal uniform ~0.95 V.
        assert!(
            cycle.avg_speed < 1.0,
            "sprint/rest average {} should sit below the sustained optimum",
            cycle.avg_speed
        );
    }
}
