//! A small line-oriented text format for schedules.
//!
//! Lets the CLI and experiment tooling pass schedules around without pulling
//! a serialization framework into the binaries:
//!
//! ```text
//! # anything after '#' is a comment
//! period 0.1
//! core 0: 0.6 x 0.06, 1.3 x 0.04
//! core 1: 1.3 x 0.1
//! ```
//!
//! Durations are in seconds, voltages in volts; cores must be listed
//! 0..N−1 in order and each must sum to the declared period (the parser
//! rescales ULP-level drift and rejects anything worse than 0.1 %). An
//! optional `repeat <m>` line carries [`Schedule::repetitions`] — the
//! declared period and the core lines then describe the repeating block.

use crate::{CoreSchedule, Result, SchedError, Schedule, Segment};
use std::fmt::Write as _;

/// Renders a schedule in the text format.
#[must_use]
pub fn to_text(schedule: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "period {}", schedule.block_period());
    if schedule.repetitions() > 1 {
        let _ = writeln!(out, "repeat {}", schedule.repetitions());
    }
    for (i, core) in schedule.cores().iter().enumerate() {
        let segs: Vec<String> =
            core.segments().iter().map(|s| format!("{} x {}", s.voltage, s.duration)).collect();
        let _ = writeln!(out, "core {i}: {}", segs.join(", "));
    }
    out
}

/// Parses the text format back into a schedule.
///
/// # Errors
/// Returns [`SchedError::Invalid`] describing the first malformed line,
/// missing/duplicate core, or period mismatch.
pub fn from_text(text: &str) -> Result<Schedule> {
    let mut period: Option<f64> = None;
    let mut repeat: Option<usize> = None;
    let mut cores: Vec<CoreSchedule> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("period") {
            if period.is_some() {
                return Err(invalid(lineno, "duplicate 'period' line"));
            }
            let p: f64 =
                rest.trim().parse().map_err(|_| invalid(lineno, "cannot parse period value"))?;
            if !(p.is_finite() && p > 0.0) {
                return Err(invalid(lineno, "period must be positive"));
            }
            period = Some(p);
        } else if let Some(rest) = line.strip_prefix("repeat") {
            if repeat.is_some() {
                return Err(invalid(lineno, "duplicate 'repeat' line"));
            }
            let m: usize =
                rest.trim().parse().map_err(|_| invalid(lineno, "cannot parse repeat count"))?;
            if m == 0 {
                return Err(invalid(lineno, "repeat count must be at least 1"));
            }
            repeat = Some(m);
        } else if let Some(rest) = line.strip_prefix("core") {
            let (idx_str, segs_str) = rest
                .split_once(':')
                .ok_or_else(|| invalid(lineno, "core line needs 'core <i>: …'"))?;
            let idx: usize =
                idx_str.trim().parse().map_err(|_| invalid(lineno, "cannot parse core index"))?;
            if idx != cores.len() {
                return Err(invalid(lineno, "cores must be listed 0..N-1 in order"));
            }
            let mut segments = Vec::new();
            for part in segs_str.split(',') {
                let (v_str, d_str) = part
                    .split_once('x')
                    .ok_or_else(|| invalid(lineno, "segment needs '<volts> x <seconds>'"))?;
                let voltage: f64 = v_str
                    .trim()
                    .parse()
                    .map_err(|_| invalid(lineno, "cannot parse segment voltage"))?;
                let duration: f64 = d_str
                    .trim()
                    .parse()
                    .map_err(|_| invalid(lineno, "cannot parse segment duration"))?;
                segments.push(Segment::new(voltage, duration));
            }
            cores.push(CoreSchedule::new(segments)?);
        } else {
            return Err(invalid(lineno, "expected 'period …' or 'core <i>: …'"));
        }
    }

    let period =
        period.ok_or_else(|| SchedError::Invalid { what: "missing 'period' line".into() })?;
    if cores.is_empty() {
        return Err(SchedError::Invalid { what: "no core lines".into() });
    }
    // Rescale tiny drift; reject real mismatches.
    let mut fixed = Vec::with_capacity(cores.len());
    for (i, c) in cores.into_iter().enumerate() {
        let actual = c.period();
        let rel = (actual - period).abs() / period;
        if rel > 1e-3 {
            return Err(SchedError::Invalid {
                what: format!("core {i} durations sum to {actual}, declared period {period}"),
            });
        }
        let scale = period / actual;
        let segs: Vec<Segment> =
            c.segments().iter().map(|s| Segment::new(s.voltage, s.duration * scale)).collect();
        fixed.push(CoreSchedule::new(segs)?);
    }
    Ok(Schedule::new(fixed)?.repeated(repeat.unwrap_or(1)))
}

fn invalid(lineno: usize, what: &str) -> SchedError {
    SchedError::Invalid { what: format!("line {}: {what}", lineno + 1) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(vec![
            CoreSchedule::new(vec![Segment::new(0.6, 0.06), Segment::new(1.3, 0.04)]).unwrap(),
            CoreSchedule::constant(1.3, 0.1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_schedule() {
        let s = sample();
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        assert_eq!(back.n_cores(), 2);
        assert!((back.period() - 0.1).abs() < 1e-12);
        assert!((back.throughput() - s.throughput()).abs() < 1e-12);
        assert_eq!(back.core(0).segments().len(), 2);
    }

    #[test]
    fn roundtrip_preserves_repetitions() {
        let s = sample().oscillated(8);
        let text = to_text(&s);
        assert!(text.contains("repeat 8"));
        let back = from_text(&text).unwrap();
        assert_eq!(back.repetitions(), 8);
        assert!((back.period() - s.period()).abs() < 1e-12);
        assert!((back.block_period() - s.block_period()).abs() < 1e-12);
        // Invalid repeat lines rejected.
        assert!(from_text("period 1.0\nrepeat 0\ncore 0: 1 x 1\n").is_err());
        assert!(from_text("period 1.0\nrepeat x\ncore 0: 1 x 1\n").is_err());
        assert!(from_text("period 1.0\nrepeat 2\nrepeat 2\ncore 0: 1 x 1\n").is_err());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a schedule\nperiod 1.0\n\ncore 0: 0.8 x 1.0  # constant\n";
        let s = from_text(text).unwrap();
        assert_eq!(s.n_cores(), 1);
        assert_eq!(s.core(0).segments()[0].voltage, 0.8);
    }

    #[test]
    fn rescales_tiny_drift() {
        let text = "period 1.0\ncore 0: 0.6 x 0.3333333, 1.3 x 0.6666666\n";
        let s = from_text(text).unwrap();
        assert!((s.period() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_text("").is_err());
        assert!(from_text("core 0: 1.0 x 1.0\n").is_err()); // missing period
        assert!(from_text("period 1.0\n").is_err()); // no cores
        assert!(from_text("period 1.0\nperiod 2.0\ncore 0: 1 x 1\n").is_err());
        assert!(from_text("period 0\ncore 0: 1 x 1\n").is_err());
        assert!(from_text("period 1.0\ncore 1: 1.0 x 1.0\n").is_err()); // out of order
        assert!(from_text("period 1.0\ncore 0: 1.0 @ 1.0\n").is_err()); // bad separator
        assert!(from_text("period 1.0\ncore 0: abc x 1.0\n").is_err());
        assert!(from_text("period 1.0\ncore 0: 1.0 x 0.5\n").is_err()); // period mismatch
        assert!(from_text("banana\n").is_err());
        // Error messages carry line numbers.
        let err = from_text("period 1.0\ncore 0: 1.0 x 0.5\n").unwrap_err();
        assert!(err.to_string().contains("core 0"));
    }

    #[test]
    fn multi_core_order_enforced() {
        let good = "period 1.0\ncore 0: 1 x 1\ncore 1: 0.6 x 1\n";
        assert_eq!(from_text(good).unwrap().n_cores(), 2);
        let dup = "period 1.0\ncore 0: 1 x 1\ncore 0: 0.6 x 1\n";
        assert!(from_text(dup).is_err());
    }
}
