//! Property-based tests for the schedule algebra.

use mosc_sched::{text, CoreSchedule, Platform, PlatformSpec, Schedule, Segment};
use mosc_testutil::{propcheck_cases, Rng64};

const CASES: usize = 48;

/// A valid random core timeline with the given period.
fn core_timeline(rng: &mut Rng64, period: f64) -> CoreSchedule {
    let n = rng.gen_range(1..5usize);
    let raw: Vec<(f64, f64)> =
        (0..n).map(|_| (rng.gen_range(0.6..1.3), rng.gen_range(0.05..1.0))).collect();
    let total: f64 = raw.iter().map(|(_, d)| d).sum();
    let segs: Vec<Segment> =
        raw.into_iter().map(|(v, d)| Segment::new(v, d / total * period)).collect();
    CoreSchedule::new(segs).expect("normalized segments are valid")
}

fn schedule(rng: &mut Rng64, n_cores: usize, period: f64) -> Schedule {
    let cores: Vec<CoreSchedule> = (0..n_cores).map(|_| core_timeline(rng, period)).collect();
    Schedule::new(cores).expect("equal periods by construction")
}

#[test]
fn stepup_transform_preserves_work_and_is_stepup() {
    propcheck_cases("stepup_transform_preserves_work_and_is_stepup", CASES, |rng| {
        let s = schedule(rng, 3, 1.0);
        let up = s.to_step_up();
        assert!(up.is_step_up());
        assert!((up.throughput() - s.throughput()).abs() < 1e-12);
        assert!((up.period() - s.period()).abs() < 1e-12);
        // Idempotence.
        assert_eq!(up.to_step_up(), up.clone());
    });
}

#[test]
fn oscillation_scales_period_only() {
    propcheck_cases("oscillation_scales_period_only", CASES, |rng| {
        let s = schedule(rng, 2, 1.0);
        let m = rng.gen_range(1..20usize);
        let o = s.oscillated(m);
        // Definition 3 carried structurally: the block compresses by m, the
        // repetition count absorbs it, the full period is invariant.
        assert!((o.block_period() - s.block_period() / m as f64).abs() < 1e-12);
        assert_eq!(o.repetitions(), s.repetitions() * m);
        assert!((o.period() - s.period()).abs() < 1e-12);
        assert!((o.throughput() - s.throughput()).abs() < 1e-12);
        assert_eq!(o.block_is_step_up(), s.block_is_step_up());
    });
}

#[test]
fn shift_preserves_work_and_period() {
    propcheck_cases("shift_preserves_work_and_period", CASES, |rng| {
        let s = schedule(rng, 3, 1.0);
        let core = rng.gen_range(0..3usize);
        let offset = rng.gen_range(0.0..2.0);
        let shifted = s.with_shifted_core(core, offset);
        assert!((shifted.throughput() - s.throughput()).abs() < 1e-12);
        assert!((shifted.period() - s.period()).abs() < 1e-9);
        // Shifting by the period is the identity (up to segment merging).
        let full = s.with_shifted_core(core, s.period());
        assert!((full.core(core).work() - s.core(core).work()).abs() < 1e-12);
    });
}

#[test]
fn shift_matches_voltage_lookup() {
    propcheck_cases("shift_matches_voltage_lookup", CASES, |rng| {
        let c = core_timeline(rng, 1.0);
        let offset = rng.gen_range(0.0..1.0);
        let probe = rng.gen_range(0.0..1.0);
        let shifted = c.shifted(offset);
        // Away from segment boundaries the lookup must match exactly.
        let v_direct = c.voltage_at(probe + offset);
        let v_shifted = shifted.voltage_at(probe);
        // Tolerate boundary ambiguity: accept when the probe sits within
        // 1e-6 of any boundary of either timeline.
        let near_boundary = |cs: &CoreSchedule, t: f64| {
            let period = cs.period();
            let mut acc = 0.0;
            let tt = t % period;
            for s in cs.segments() {
                acc += s.duration;
                if (tt - acc).abs() < 1e-6 || (tt - (acc - s.duration)).abs() < 1e-6 {
                    return true;
                }
            }
            false
        };
        if !near_boundary(&c, probe + offset) && !near_boundary(&shifted, probe) {
            assert_eq!(v_direct, v_shifted);
        }
    });
}

#[test]
fn state_intervals_partition_the_period() {
    propcheck_cases("state_intervals_partition_the_period", CASES, |rng| {
        let s = schedule(rng, 3, 1.0);
        let ivs = s.state_intervals();
        let total: f64 = ivs.iter().map(|(_, l)| l).sum();
        assert!((total - s.period()).abs() < 1e-9);
        // Each interval's voltages match the per-core lookup at its midpoint.
        let mut start = 0.0;
        for (voltages, len) in &ivs {
            let mid = start + len / 2.0;
            for (c, &v) in voltages.iter().enumerate() {
                assert!((s.core(c).voltage_at(mid) - v).abs() < 1e-12);
            }
            start += len;
        }
    });
}

#[test]
fn text_roundtrip() {
    propcheck_cases("text_roundtrip", CASES, |rng| {
        let s = schedule(rng, 3, 0.5);
        let rendered = text::to_text(&s);
        let back = text::from_text(&rendered).unwrap();
        assert_eq!(back.n_cores(), s.n_cores());
        assert!((back.period() - s.period()).abs() < 1e-9);
        assert!((back.throughput() - s.throughput()).abs() < 1e-9);
    });
}

#[test]
fn throughput_is_mean_of_core_speeds() {
    propcheck_cases("throughput_is_mean_of_core_speeds", CASES, |rng| {
        let s = schedule(rng, 3, 1.0);
        let mean: f64 =
            s.cores().iter().map(|c| c.work() / s.period()).sum::<f64>() / s.n_cores() as f64;
        assert!((s.throughput() - mean).abs() < 1e-12);
        // Bounded by the voltage range used by the generator.
        assert!(s.throughput() >= 0.6 - 1e-9 && s.throughput() <= 1.3 + 1e-9);
    });
}

#[test]
fn period_map_matches_dense_reference() {
    // The modal period-map fast path and the interval-by-interval dense
    // oracle must agree on the stable status — including for large
    // repetition counts, where the fast path exponentiates by squaring
    // while the oracle grinds through every materialized interval.
    propcheck_cases("period_map_matches_dense_reference", 6, |rng| {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 3, 65.0)).unwrap();
        for &m in &[1usize, 3, 17, 256] {
            let base = schedule(rng, 2, 0.3);
            // Both repetition flavors: plain repeat (same block, m blocks)
            // and Definition-3 oscillation (block compressed by m).
            let s =
                if rng.gen_range(0..2usize) == 0 { base.repeated(m) } else { base.oscillated(m) };
            let ss = mosc_sched::eval::SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
            let (t_start, at_ends) =
                mosc_sched::eval::compute_dense(p.thermal(), p.power(), &s).unwrap();
            let d0 = ss.t_start().max_abs_diff(&t_start);
            assert!(d0 < 1e-10, "m={m}: start fixed point differs by {d0}");
            // The stable trace is block-periodic: the fast path stores one
            // block of interval ends, the oracle all m·d of them.
            let d = ss.at_interval_ends().len();
            assert_eq!(at_ends.len(), d * s.repetitions());
            for (k, t) in ss.at_interval_ends().iter().enumerate() {
                let dk = t.max_abs_diff(&at_ends[k]);
                assert!(dk < 1e-10, "m={m}: interval end {k}/{d} differs by {dk}");
                // And again in the last block.
                let dk = t.max_abs_diff(&at_ends[at_ends.len() - d + k]);
                assert!(dk < 1e-10, "m={m}: last-block end {k}/{d} differs by {dk}");
            }
        }
    });
}

#[test]
fn peak_agrees_with_dense_sampling_under_repetition() {
    // peak_temperature routes through the period-map kernel; a brute-force
    // scan of the dense oracle's stable trace must find the same value.
    propcheck_cases("peak_agrees_with_dense_sampling_under_repetition", 8, |rng| {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 3, 65.0)).unwrap();
        let m = [1usize, 3, 17][rng.gen_range(0..3usize)];
        let s = schedule(rng, 2, 0.3).oscillated(m);
        let fast =
            mosc_sched::eval::peak_temperature(p.thermal(), p.power(), &s, Some(600)).unwrap();
        let ss = mosc_sched::eval::SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let dense = ss.peak_sampled(p.thermal(), 8000).unwrap();
        assert!(
            (fast.temp - dense.temp).abs() < 1e-4,
            "m={m}: fast peak {} vs dense {}",
            fast.temp,
            dense.temp
        );
    });
}

#[test]
fn steady_state_invariant_under_stepup_throughput() {
    propcheck_cases("steady_state_invariant_under_stepup_throughput", 16, |rng| {
        // Not a theorem about temperature — but both schedules must agree on
        // work, and their steady states must both be valid fixed points.
        let s = schedule(rng, 2, 0.4);
        let p = Platform::build(&PlatformSpec::paper(1, 2, 5, 65.0)).unwrap();
        let up = s.to_step_up();
        let ss1 = mosc_sched::eval::SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let ss2 = mosc_sched::eval::SteadyState::compute(p.thermal(), p.power(), &up).unwrap();
        assert!(ss1.at_interval_ends().last().unwrap().max_abs_diff(ss1.t_start()) < 1e-8);
        assert!(ss2.at_interval_ends().last().unwrap().max_abs_diff(ss2.t_start()) < 1e-8);
        // Theorem 2 as a property: step-up peak bounds the original's.
        let p1 = mosc_sched::eval::peak_temperature(p.thermal(), p.power(), &s, Some(300)).unwrap();
        let p2 = p.peak(&up).unwrap();
        assert!(p1.temp <= p2.temp + 1e-4 + 1e-3 * p2.temp.abs());
    });
}
