//! Randomized validation of the paper's formal results.
//!
//! * Theorem 1 — a step-up schedule's stable-status peak is at the period end.
//! * Theorem 2 — the step-up reordering bounds the peak of any permutation.
//! * Lemma 1  — moving a high interval later raises the period-end temperature.
//! * Theorem 3 — a constant mode beats any same-work two-mode split.
//! * Theorem 4 — tighter neighboring mode pairs beat wider ones.
//! * Theorem 5 — the m-Oscillating peak is monotone non-increasing in m.
//! * Property 1 — all-off cooldown is monotone.

use mosc_linalg::Vector;
use mosc_sched::eval::{transient_trace, SteadyState};
use mosc_sched::{CoreSchedule, Platform, PlatformSpec, Schedule, Segment};
use mosc_testutil::Rng64;

const TOL: f64 = 1e-7;

fn platform(rows: usize, cols: usize) -> Platform {
    Platform::build(&PlatformSpec::paper(rows, cols, 5, 65.0)).unwrap()
}

/// Random step-up core timeline: `1..=max_segs` segments with ascending
/// voltages drawn from the 0.6–1.3 V range, summing to `period`.
fn random_stepup_core(rng: &mut Rng64, period: f64, max_segs: usize) -> CoreSchedule {
    let n = rng.gen_range(1..=max_segs);
    let mut voltages: Vec<f64> = (0..n).map(|_| rng.gen_range(0.6..=1.3)).collect();
    voltages.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cuts: Vec<f64> = {
        let mut c: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(0.05..0.95)).collect();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        c
    };
    let mut segs = Vec::with_capacity(n);
    let mut prev = 0.0;
    for (i, &v) in voltages.iter().enumerate() {
        let end = if i + 1 == n { 1.0 } else { cuts[i] };
        segs.push(Segment::new(v, (end - prev) * period));
        prev = end;
    }
    CoreSchedule::new(segs).unwrap()
}

fn random_stepup_schedule(rng: &mut Rng64, n_cores: usize, period: f64) -> Schedule {
    let cores = (0..n_cores).map(|_| random_stepup_core(rng, period, 4)).collect();
    Schedule::new(cores).unwrap()
}

/// Random arbitrary (not necessarily step-up) schedule.
fn random_schedule(rng: &mut Rng64, n_cores: usize, period: f64) -> Schedule {
    let cores = (0..n_cores)
        .map(|_| {
            let mut c = random_stepup_core(rng, period, 4);
            // Shuffle the segments to break the step-up order.
            let mut segs = c.segments().to_vec();
            for i in (1..segs.len()).rev() {
                let j = rng.gen_range(0..=i);
                segs.swap(i, j);
            }
            c = CoreSchedule::new(segs).unwrap();
            c
        })
        .collect();
    Schedule::new(cores).unwrap()
}

#[test]
fn theorem1_stepup_peak_at_period_end() {
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(11);
    for trial in 0..20 {
        let period = rng.gen_range(0.02..4.0);
        let s = random_stepup_schedule(&mut rng, 3, period);
        assert!(s.is_step_up());
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let at_end = p.thermal().max_core_temp(ss.t_start());
        let sampled = ss.peak_sampled(p.thermal(), 1500).unwrap();
        assert!(
            sampled.temp <= at_end + TOL,
            "trial {trial}: sampled peak {} exceeds period-end {} (period {period})",
            sampled.temp,
            at_end
        );
    }
}

#[test]
fn theorem1_warmup_from_ambient_monotone_for_constant_mode() {
    // The warm-up envelope from ambient under a step-up schedule stays below
    // the stable status peak (a consequence of Theorem 1's proof machinery).
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(13);
    for _ in 0..5 {
        let s = random_stepup_schedule(&mut rng, 3, 1.0);
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let peak_ss = p.thermal().max_core_temp(ss.t_start());
        let t0 = Vector::zeros(p.thermal().n_nodes());
        let trace = transient_trace(p.thermal(), p.power(), &s, &t0, 30, 40).unwrap();
        let warmup_peak = trace.peak().unwrap().temp;
        assert!(
            warmup_peak <= peak_ss + TOL,
            "warm-up peak {warmup_peak} exceeded stable-status peak {peak_ss}"
        );
    }
}

#[test]
fn theorem2_stepup_bounds_arbitrary_permutations() {
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(17);
    for trial in 0..20 {
        let period = rng.gen_range(0.05..6.0);
        let s = random_schedule(&mut rng, 3, period);
        let up = s.to_step_up();
        let peak_s = p.peak(&s).unwrap().temp;
        let peak_up = p.peak(&up).unwrap().temp;
        assert!(
            peak_s <= peak_up + 1e-4 + 1e-3 * peak_up.abs(),
            "trial {trial}: arbitrary peak {peak_s} exceeds step-up bound {peak_up} (period {period})"
        );
    }
}

#[test]
fn lemma1_high_interval_later_raises_period_end_temperature() {
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(23);
    for trial in 0..15 {
        let period = rng.gen_range(0.1..4.0);
        let v_const: Vec<f64> = (0..3).map(|_| rng.gen_range(0.6..=1.3)).collect();
        let core_i = rng.gen_range(0..3);
        let v_l = rng.gen_range(0.6..1.0);
        let v_h = rng.gen_range(v_l..=1.3);
        let split = rng.gen_range(0.2..0.8);

        // S: core_i runs the (v_L, split·t_p) interval then (v_H, rest).
        // S~ exchanges the two intervals AS UNITS (voltage + duration), so
        // both schedules complete identical work.
        let make = |first: Segment, second: Segment| {
            let mut cores: Vec<CoreSchedule> =
                v_const.iter().map(|&v| CoreSchedule::constant(v, period).unwrap()).collect();
            cores[core_i] = CoreSchedule::new(vec![first, second]).unwrap();
            Schedule::new(cores).unwrap()
        };
        let lo_seg = Segment::new(v_l, split * period);
        let hi_seg = Segment::new(v_h, (1.0 - split) * period);
        let s = make(lo_seg, hi_seg);
        let s_swapped = make(hi_seg, lo_seg);
        assert!((s.throughput() - s_swapped.throughput()).abs() < 1e-12);

        let end_s = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let end_sw = SteadyState::compute(p.thermal(), p.power(), &s_swapped).unwrap();
        // Lemma 1, prose form: moving the high interval toward the period end
        // raises the stable-status period-end temperature. The paper states
        // the order on the CORE temperature vector (its T has one entry per
        // core); our package/rim nodes can deviate by O(µK) and are excluded.
        for c in 0..3 {
            assert!(
                end_sw.t_start()[c] <= end_s.t_start()[c] + 1e-6,
                "trial {trial} core {c}: swapping high earlier must cool the period end \
                 ({} vs {})",
                end_sw.t_start()[c],
                end_s.t_start()[c]
            );
        }
    }
}

#[test]
fn theorem3_constant_mode_beats_two_mode_split() {
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(29);
    for trial in 0..15 {
        let period = rng.gen_range(0.05..2.0);
        let v_e = rng.gen_range(0.7..1.2);
        let v_l = rng.gen_range(0.6..v_e);
        let v_h = rng.gen_range(v_e..1.3);
        // Same work: x·v_L + (1−x)·v_H = v_e.
        let x = (v_h - v_e) / (v_h - v_l);
        let others: Vec<f64> = (0..2).map(|_| rng.gen_range(0.6..1.3)).collect();

        let constant = Schedule::new(vec![
            CoreSchedule::constant(v_e, period).unwrap(),
            CoreSchedule::constant(others[0], period).unwrap(),
            CoreSchedule::constant(others[1], period).unwrap(),
        ])
        .unwrap();
        let split = Schedule::new(vec![
            CoreSchedule::new(vec![
                Segment::new(v_l, x * period),
                Segment::new(v_h, (1.0 - x) * period),
            ])
            .unwrap(),
            CoreSchedule::constant(others[0], period).unwrap(),
            CoreSchedule::constant(others[1], period).unwrap(),
        ])
        .unwrap();

        let peak_const = p.peak(&constant).unwrap().temp;
        let peak_split = p.peak(&split).unwrap().temp;
        assert!(
            peak_const <= peak_split + TOL,
            "trial {trial}: constant {peak_const} must not exceed split {peak_split}"
        );
    }
}

#[test]
fn theorem4_neighboring_modes_beat_wider_pairs() {
    let p = platform(1, 3);
    let mut rng = Rng64::seed_from_u64(31);
    for trial in 0..15 {
        let period = rng.gen_range(0.05..2.0);
        let v_e = rng.gen_range(0.8..1.1);
        // Narrow pair around v_e and a strictly wider pair.
        let (nl, nh) = (v_e - 0.05, v_e + 0.05);
        let (wl, wh) = (v_e - rng.gen_range(0.1..0.2), v_e + rng.gen_range(0.1..0.2));
        let ratio = |lo: f64, hi: f64| (hi - v_e) / (hi - lo); // time share at lo
        let others: Vec<f64> = (0..2).map(|_| rng.gen_range(0.6..1.3)).collect();
        let make = |lo: f64, hi: f64| {
            let x = ratio(lo, hi);
            Schedule::new(vec![
                CoreSchedule::new(vec![
                    Segment::new(lo, x * period),
                    Segment::new(hi, (1.0 - x) * period),
                ])
                .unwrap(),
                CoreSchedule::constant(others[0], period).unwrap(),
                CoreSchedule::constant(others[1], period).unwrap(),
            ])
            .unwrap()
        };
        let narrow = make(nl, nh);
        let wide = make(wl, wh);
        assert!(
            (narrow.throughput() - wide.throughput()).abs() < 1e-9,
            "both pairs complete the same work"
        );
        let peak_narrow = p.peak(&narrow).unwrap().temp;
        let peak_wide = p.peak(&wide).unwrap().temp;
        assert!(
            peak_narrow <= peak_wide + TOL,
            "trial {trial}: narrow pair {peak_narrow} must not exceed wide pair {peak_wide}"
        );
    }
}

#[test]
fn theorem5_oscillation_monotone_on_9_cores() {
    // The paper's Fig. 5 setting: 9 cores, random step-up schedule.
    let p = platform(3, 3);
    let mut rng = Rng64::seed_from_u64(37);
    let s = random_stepup_schedule(&mut rng, 9, 9.836);
    let mut prev = f64::INFINITY;
    for m in [1usize, 2, 3, 5, 8, 13, 21, 34, 55] {
        let peak = p.peak(&s.oscillated(m)).unwrap().temp;
        assert!(
            peak <= prev + TOL,
            "peak must be non-increasing in m: m={m} gives {peak}, previous {prev}"
        );
        prev = peak;
    }
}

#[test]
fn theorem5_oscillation_monotone_small_platforms() {
    let mut rng = Rng64::seed_from_u64(41);
    for (rows, cols) in [(1, 2), (1, 3), (2, 3)] {
        let p = platform(rows, cols);
        let s = random_stepup_schedule(&mut rng, rows * cols, 2.0);
        let mut prev = f64::INFINITY;
        for m in 1..=12 {
            let peak = p.peak(&s.oscillated(m)).unwrap().temp;
            assert!(peak <= prev + TOL, "{rows}x{cols}: m={m} peak {peak} > prev {prev}");
            prev = peak;
        }
    }
}

#[test]
fn oscillation_limit_is_equivalent_constant_schedule() {
    // As m → ∞ the oscillating schedule's peak approaches the peak of the
    // power-averaged constant schedule (not the speed-averaged one): the
    // thermal LTI system only sees the duty-cycled power profile.
    let p = platform(1, 2);
    let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.5, 0.5], 1.0).unwrap();
    let big_m = p.peak(&s.oscillated(4096)).unwrap().temp;
    // Average power per core: 0.5·ψ(0.6) + 0.5·ψ(1.3).
    let psi_avg: Vec<f64> =
        (0..2).map(|_| 0.5 * p.power().psi(0.6) + 0.5 * p.power().psi(1.3)).collect();
    let t_inf = p.thermal().steady_state_cores(&psi_avg).unwrap().max();
    assert!(
        (big_m - t_inf).abs() < 0.2,
        "m→∞ peak {big_m} should approach averaged-power steady peak {t_inf}"
    );
    // The residual ripple keeps the oscillating peak above the average.
    assert!(big_m >= t_inf - 1e-9);
}

#[test]
fn property1_all_off_cooldown_is_monotone() {
    let p = platform(2, 3);
    // Heat up, then shut everything down and watch the decay.
    let hot = p.thermal().steady_state(&p.psi_profile(&[1.3, 1.2, 1.1, 1.0, 1.3, 1.2])).unwrap();
    let off = Schedule::constant(&[0.0; 6], 0.5).unwrap();
    let trace = transient_trace(p.thermal(), p.power(), &off, &hot, 40, 10).unwrap();
    for w in trace.temps().windows(2) {
        assert!(w[1].le_elementwise(&w[0], 1e-9), "cooldown must be element-wise monotone");
    }
}

#[test]
fn fig2_single_core_oscillation_can_raise_peak() {
    // The paper's Fig. 2 counterexample: oscillating only ONE core can
    // increase the multi-core peak. We reproduce the exact setup: 100 ms
    // period, core 0 plays (1.3, 0.6), core 1 plays (0.6, 1.3); then core 0
    // doubles its oscillation frequency while core 1 keeps its schedule.
    let p = platform(1, 2);
    let base = Schedule::new(vec![
        CoreSchedule::new(vec![Segment::new(1.3, 0.05), Segment::new(0.6, 0.05)]).unwrap(),
        CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)]).unwrap(),
    ])
    .unwrap();
    let single = Schedule::new(vec![
        CoreSchedule::new(vec![
            Segment::new(1.3, 0.025),
            Segment::new(0.6, 0.025),
            Segment::new(1.3, 0.025),
            Segment::new(0.6, 0.025),
        ])
        .unwrap(),
        CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)]).unwrap(),
    ])
    .unwrap();
    let peak_base = p.peak(&base).unwrap().temp;
    let peak_single = p.peak(&single).unwrap().temp;
    // Not asserting a strict increase as a theorem (it is a counterexample,
    // not a law) — but on this platform, like the paper's, it does increase.
    assert!(
        peak_single > peak_base - 0.3,
        "single-core oscillation must not dramatically reduce the peak \
         (base {peak_base}, single {peak_single})"
    );
    // Whole-chip oscillation, by contrast, is guaranteed not to hurt.
    let both = base.oscillated(2);
    let peak_both = p.peak(&both).unwrap().temp;
    assert!(peak_both <= peak_base + TOL);
}
