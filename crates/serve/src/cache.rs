//! The LRU solution cache and its canonical key.
//!
//! The paper's schedules are pure functions of the platform spec and the
//! solver options (Algorithm 2 recomputes everything from `Platform`), so a
//! solve result can be reused for any byte-identical query. The key is an
//! FNV-1a hash over the canonical serialization of `(platform, solver kind,
//! options)` — canonical meaning object keys sorted at every level, so two
//! clients spelling the same platform with different member order share an
//! entry. The request deadline is excluded from the key: only successful
//! solves are cached, and a success is the same solution under any deadline.
//!
//! Two properties fixed in PR 8:
//!
//! * **Collision safety.** A 64-bit hash is not an identity: the cache used
//!   to index on the bare hash, so two requests colliding on it would
//!   silently trade solutions. [`CacheKey`] now carries the canonical
//!   preimage alongside the hash, and [`LruCache::get`] verifies it on
//!   every hit — a collision degrades to a miss (and the later insert
//!   overwrites the slot), never to a wrong answer.
//! * **Cheap hits.** Entries are stored as `Arc<CachedSolve>`; a hit clones
//!   the `Arc`, not the value, so hit cost no longer scales with
//!   `schedule_text` size.

use crate::proto::{canonical_json, options_to_json, SolveRequest};
use mosc_core::{SolveOptions, SolverKind, SolverStats};
use std::collections::HashMap;
use std::sync::Arc;

/// 64-bit FNV-1a over raw bytes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A canonical cache key: the 64-bit FNV-1a hash used for indexing (and
/// for the access log's `key` field), plus the preimage it was derived
/// from so hits can be verified instead of trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a hash of [`preimage`](Self::preimage).
    pub hash: u64,
    /// The canonical `platform \0 kind \0 options` serialization.
    pub preimage: String,
}

/// The cache key of a solve request: platform + solver kind + options, with
/// the deadline masked out (see the module docs).
#[must_use]
pub fn cache_key(req: &SolveRequest) -> CacheKey {
    cache_key_parts(&canonical_json(&req.platform), req.kind, &req.options)
}

/// [`cache_key`] from pre-serialized parts: the batch path canonicalizes
/// the shared platform once and derives every variant's key from it.
#[must_use]
pub fn cache_key_parts(
    canonical_platform: &str,
    kind: SolverKind,
    options: &SolveOptions,
) -> CacheKey {
    let keyed_options = SolveOptions { deadline: None, ..*options };
    let mut preimage = String::with_capacity(canonical_platform.len() + 64);
    preimage.push_str(canonical_platform);
    preimage.push('\0');
    preimage.push_str(kind.id());
    preimage.push('\0');
    preimage.push_str(&options_to_json(&keyed_options));
    CacheKey { hash: fnv1a(preimage.as_bytes()), preimage }
}

/// A cached solve outcome: everything needed to render an `ok` response for
/// any later request (including `want_schedule`, which is why the schedule
/// text is always kept).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolve {
    /// Which solver produced the result.
    pub solver: SolverKind,
    /// Chip-wide throughput per eq. (5).
    pub throughput: f64,
    /// Stable-status peak temperature in °C.
    pub peak_c: f64,
    /// Whether the peak respects `T_max`.
    pub feasible: bool,
    /// Oscillation factor used.
    pub m: usize,
    /// Wall time of the original (uncached) solve, in milliseconds.
    pub wall_ms: f64,
    /// Cross-solver search statistics of the original solve.
    pub stats: SolverStats,
    /// The schedule in `mosc-sched::text` form.
    pub schedule_text: String,
}

/// A fixed-capacity least-recently-used cache. Lookups and inserts are
/// `O(1)`; eviction scans for the oldest stamp, which is `O(capacity)` —
/// fine at service cache sizes (hundreds), and it keeps the structure a
/// plain `HashMap` instead of a hand-rolled intrusive list.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, (u64, String, Arc<CachedSolve>)>,
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, entries: HashMap::new() }
    }

    /// Looks up `key`, refreshing its recency on a verified hit. The stored
    /// preimage must match the key's — a hash collision answers `None`
    /// (solve it again) instead of someone else's solution.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedSolve>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&key.hash) {
            Some((stamp, preimage, v)) if *preimage == key.preimage => {
                *stamp = clock;
                Some(Arc::clone(v))
            }
            _ => None,
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when at capacity. A colliding resident entry (same hash, different
    /// preimage) is overwritten — latest writer wins, and [`get`](Self::get)
    /// verification keeps either outcome correct. Returns `true` when a
    /// capacity eviction happened.
    pub fn insert(&mut self, key: &CacheKey, value: CachedSolve) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.clock += 1;
        let mut evicted = false;
        if !self.entries.contains_key(&key.hash) && self.entries.len() >= self.capacity {
            if let Some(&oldest) =
                self.entries.iter().min_by_key(|(_, (stamp, _, _))| *stamp).map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
                evicted = true;
            }
        }
        self.entries.insert(key.hash, (self.clock, key.preimage.clone(), Arc::new(value)));
        evicted
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_analyze::json::Value;

    fn dummy(throughput: f64) -> CachedSolve {
        CachedSolve {
            solver: SolverKind::Ao,
            throughput,
            peak_c: 50.0,
            feasible: true,
            m: 1,
            wall_ms: 1.0,
            stats: SolverStats::default(),
            schedule_text: String::new(),
        }
    }

    /// A key whose hash is forced to `hash` regardless of the preimage —
    /// the collision regression tests depend on constructing two distinct
    /// preimages that index the same slot.
    fn forced(hash: u64, preimage: &str) -> CacheKey {
        CacheKey { hash, preimage: preimage.to_owned() }
    }

    fn key(n: u64) -> CacheKey {
        forced(n, &format!("preimage-{n}"))
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_entry() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(&key(1), dummy(1.0)));
        assert!(!c.insert(&key(2), dummy(2.0)));
        // Touch 1, so 2 is now the LRU entry.
        assert!(c.get(&key(1)).is_some());
        assert!(c.insert(&key(3), dummy(3.0)));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry should have been evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(&key(1), dummy(1.0)));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let mut c = LruCache::new(1);
        assert!(!c.insert(&key(7), dummy(1.0)));
        assert!(!c.insert(&key(7), dummy(2.0)), "refresh is not an eviction");
        assert!((c.get(&key(7)).unwrap().throughput - 2.0).abs() < 1e-12);
    }

    #[test]
    fn colliding_keys_never_alias() {
        // Regression: two entries forced onto the same 64-bit slot. Before
        // the preimage check, the second request would have been answered
        // with the first request's solution.
        let mut c = LruCache::new(4);
        let a = forced(0xdead_beef, "platform-a\0ao\0{}");
        let b = forced(0xdead_beef, "platform-b\0ao\0{}");
        assert!(!c.insert(&a, dummy(1.0)));
        assert!(c.get(&b).is_none(), "collision must miss, not serve a's solution");
        let hit = c.get(&a).expect("a still resolves");
        assert!((hit.throughput - 1.0).abs() < 1e-12);
        // The colliding insert overwrites the slot; verification now
        // protects a instead.
        assert!(!c.insert(&b, dummy(2.0)));
        assert!(c.get(&a).is_none());
        assert!((c.get(&b).unwrap().throughput - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hits_share_one_allocation() {
        // The Arc rework: repeated hits must hand out the same allocation,
        // not clones of the value.
        let mut c = LruCache::new(2);
        c.insert(&key(5), dummy(5.0));
        let first = c.get(&key(5)).unwrap();
        let second = c.get(&key(5)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hits must share the cached allocation");
    }

    #[test]
    fn cache_key_is_member_order_independent_but_value_sensitive() {
        let mk = |platform: &str| SolveRequest {
            id: "x".into(),
            kind: SolverKind::Ao,
            platform: Value::parse(platform).unwrap(),
            options: SolveOptions::default(),
            want_schedule: false,
            trace: None,
        };
        let a = mk(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#);
        let b = mk(r#"{"t_max_c":55.0,"levels":[0.6,1.3],"cols":2,"rows":1}"#);
        assert_eq!(cache_key(&a), cache_key(&b), "member order must not matter");
        let c = mk(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":56.0}"#);
        assert_ne!(cache_key(&a).hash, cache_key(&c).hash, "values must matter");
        // The solver kind and options are part of the key; the deadline and
        // the id are not.
        let mut d = a.clone();
        d.kind = SolverKind::Lns;
        assert_ne!(cache_key(&a).hash, cache_key(&d).hash);
        let mut e = a.clone();
        e.options.threads = 7;
        assert_ne!(cache_key(&a).hash, cache_key(&e).hash);
        let mut f = a.clone();
        f.id = "other".into();
        f.options.deadline = Some(std::time::Duration::from_secs(1));
        assert_eq!(cache_key(&a), cache_key(&f));
    }

    #[test]
    fn cache_key_parts_matches_cache_key() {
        let req = SolveRequest {
            id: "x".into(),
            kind: SolverKind::Pco,
            platform: Value::parse(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#)
                .unwrap(),
            options: SolveOptions::default(),
            want_schedule: false,
            trace: None,
        };
        let direct = cache_key(&req);
        let parts = cache_key_parts(&canonical_json(&req.platform), req.kind, &req.options);
        assert_eq!(direct, parts);
    }
}
