//! The LRU solution cache and its canonical key.
//!
//! The paper's schedules are pure functions of the platform spec and the
//! solver options (Algorithm 2 recomputes everything from `Platform`), so a
//! solve result can be reused for any byte-identical query. The key is an
//! FNV-1a hash over the canonical serialization of `(platform, solver kind,
//! options)` — canonical meaning object keys sorted at every level, so two
//! clients spelling the same platform with different member order share an
//! entry. The request deadline is excluded from the key: only successful
//! solves are cached, and a success is the same solution under any deadline.

use crate::proto::{canonical_json, options_to_json, SolveRequest};
use mosc_core::{SolveOptions, SolverKind, SolverStats};
use std::collections::HashMap;

/// 64-bit FNV-1a over raw bytes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key of a solve request: platform + solver kind + options, with
/// the deadline masked out (see the module docs).
#[must_use]
pub fn cache_key(req: &SolveRequest) -> u64 {
    let keyed_options = SolveOptions { deadline: None, ..req.options };
    let mut preimage = canonical_json(&req.platform);
    preimage.push('\0');
    preimage.push_str(req.kind.id());
    preimage.push('\0');
    preimage.push_str(&options_to_json(&keyed_options));
    fnv1a(preimage.as_bytes())
}

/// A cached solve outcome: everything needed to render an `ok` response for
/// any later request (including `want_schedule`, which is why the schedule
/// text is always kept).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolve {
    /// Which solver produced the result.
    pub solver: SolverKind,
    /// Chip-wide throughput per eq. (5).
    pub throughput: f64,
    /// Stable-status peak temperature in °C.
    pub peak_c: f64,
    /// Whether the peak respects `T_max`.
    pub feasible: bool,
    /// Oscillation factor used.
    pub m: usize,
    /// Wall time of the original (uncached) solve, in milliseconds.
    pub wall_ms: f64,
    /// Cross-solver search statistics of the original solve.
    pub stats: SolverStats,
    /// The schedule in `mosc-sched::text` form.
    pub schedule_text: String,
}

/// A fixed-capacity least-recently-used cache. Lookups and inserts are
/// `O(1)`; eviction scans for the oldest stamp, which is `O(capacity)` —
/// fine at service cache sizes (hundreds), and it keeps the structure a
/// plain `HashMap` instead of a hand-rolled intrusive list.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, (u64, CachedSolve)>,
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, entries: HashMap::new() }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<CachedSolve> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|(stamp, v)| {
            *stamp = clock;
            v.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when at capacity. Returns `true` when an eviction happened.
    pub fn insert(&mut self, key: u64, value: CachedSolve) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.clock += 1;
        let mut evicted = false;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                self.entries.remove(&oldest);
                evicted = true;
            }
        }
        self.entries.insert(key, (self.clock, value));
        evicted
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_analyze::json::Value;

    fn dummy(throughput: f64) -> CachedSolve {
        CachedSolve {
            solver: SolverKind::Ao,
            throughput,
            peak_c: 50.0,
            feasible: true,
            m: 1,
            wall_ms: 1.0,
            stats: SolverStats::default(),
            schedule_text: String::new(),
        }
    }

    #[test]
    fn lru_evicts_the_oldest_untouched_entry() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(1, dummy(1.0)));
        assert!(!c.insert(2, dummy(2.0)));
        // Touch 1, so 2 is now the LRU entry.
        assert!(c.get(1).is_some());
        assert!(c.insert(3, dummy(3.0)));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry should have been evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(1, dummy(1.0)));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let mut c = LruCache::new(1);
        assert!(!c.insert(7, dummy(1.0)));
        assert!(!c.insert(7, dummy(2.0)), "refresh is not an eviction");
        assert!((c.get(7).unwrap().throughput - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cache_key_is_member_order_independent_but_value_sensitive() {
        let mk = |platform: &str| SolveRequest {
            id: "x".into(),
            kind: SolverKind::Ao,
            platform: Value::parse(platform).unwrap(),
            options: SolveOptions::default(),
            want_schedule: false,
        };
        let a = mk(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#);
        let b = mk(r#"{"t_max_c":55.0,"levels":[0.6,1.3],"cols":2,"rows":1}"#);
        assert_eq!(cache_key(&a), cache_key(&b), "member order must not matter");
        let c = mk(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":56.0}"#);
        assert_ne!(cache_key(&a), cache_key(&c), "values must matter");
        // The solver kind and options are part of the key; the deadline and
        // the id are not.
        let mut d = a.clone();
        d.kind = SolverKind::Lns;
        assert_ne!(cache_key(&a), cache_key(&d));
        let mut e = a.clone();
        e.options.threads = 7;
        assert_ne!(cache_key(&a), cache_key(&e));
        let mut f = a.clone();
        f.id = "other".into();
        f.options.deadline = Some(std::time::Duration::from_secs(1));
        assert_eq!(cache_key(&a), cache_key(&f));
    }
}
