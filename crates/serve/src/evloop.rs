//! The event-loop front end: one nonblocking I/O thread owns every client
//! socket, multiplexed through [`crate::poller::Poller`], while the same
//! worker pool as the threaded front end executes solves behind it.
//!
//! ## Connection state machine
//!
//! Each accepted socket becomes a [`Conn`] that moves bytes through four
//! stages: **read** (fill `rbuf` until `WouldBlock`), **reassemble**
//! (split `rbuf` on `\n`; a trailing fragment is dispatched at EOF, which
//! is exactly `BufRead::read_line`'s behavior on the threaded front end),
//! **dispatch** (each non-empty line goes through the shared
//! [`handle_line`], synchronously for protocol ops and cache hits,
//! asynchronously via the worker queue for solves), and **write** (framed
//! response lines from the [`Outbox`] are appended to `wbuf` and flushed
//! while the socket accepts them, with write interest registered only
//! while a backlog exists).
//!
//! Accounting closes a connection at the right moment without tracking
//! request identity: [`handle_line`] guarantees exactly one response line
//! per non-empty request line, so `dispatched == responded && wbuf empty`
//! means the connection is fully answered. EOF plus that condition —
//! or a fatal socket error at any point — retires the `Conn`.
//!
//! ## Backpressure
//!
//! A client that sends faster than it reads grows `wbuf`; past
//! [`WBUF_MAX`] the loop drops the connection's read interest until the
//! backlog flushes below the limit, so one slow reader bounds its own
//! memory instead of the daemon's.
//!
//! ## Waking
//!
//! Workers finish on their own threads, so the loop parks in
//! [`Poller::wait`] with a self-wake channel registered alongside the
//! sockets: a loopback socket pair (pure std — an ephemeral listener,
//! connect, accept) whose read end lives in the poll set. [`Outbox::push`]
//! enqueues the framed line and writes one byte to the other end unless a
//! wake is already pending. The loop clears the pending flag *before*
//! draining the queue, so a push that races the drain either lands in the
//! current batch or raises a fresh wake — never lost.
//!
//! ## Shutdown
//!
//! The wire `shutdown` op (or [`crate::ServeHandle::shutdown`]) sets the
//! shared flag and pokes the listener with a throwaway connect. The loop
//! then closes the worker queue (drain-then-exit, same as the threaded
//! front end), deregisters the listener, stops reading, and keeps flushing
//! until every dispatched line has its response delivered.

use crate::poller::{Interest, PollEvent, Poller, Token};
use crate::server::{handle_line, ConnWriter, Shared};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Write-backlog bound per connection; past this the loop stops reading
/// from the socket until the backlog drains below it again.
const WBUF_MAX: usize = 1 << 20;

/// Read scratch size per `read(2)` call.
const SCRATCH: usize = 16 * 1024;

/// Poll-timeout cap while draining: a safety net so delivery re-checks
/// even if a wake were somehow missed.
const DRAIN_POLL: Duration = Duration::from_millis(200);

const TOKEN_LISTENER: Token = 0;
const TOKEN_WAKE: Token = 1;
/// Connection ids (allocated from 1) map to tokens as `id + CONN_BASE`.
const CONN_BASE: Token = 2;

/// Completed responses in flight from worker threads to the I/O thread.
/// Framed (newline-terminated) lines, tagged with the connection they
/// answer; pushing wakes the loop if it is parked.
pub(crate) struct Outbox {
    queue: Mutex<VecDeque<(u64, String)>>,
    /// Collapses wake bytes: set by the first push after a drain, cleared
    /// by the loop before it drains.
    wake_pending: AtomicBool,
    wake_tx: Mutex<TcpStream>,
}

impl Outbox {
    fn new(wake_tx: TcpStream) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            wake_pending: AtomicBool::new(false),
            wake_tx: Mutex::new(wake_tx),
        }
    }

    /// Queues one framed response line for `conn` and wakes the loop.
    pub(crate) fn push(&self, conn: u64, framed: String) {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back((conn, framed));
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            // A failed write means the wake pipe's buffer already holds
            // unread bytes, which is itself a pending wake.
            let _ = self.wake_tx.lock().unwrap_or_else(PoisonError::into_inner).write_all(&[1]);
        }
    }

    /// Takes the whole pending batch. Callers clear `wake_pending` first;
    /// see the module docs for why that order cannot lose a wake.
    fn drain(&self) -> VecDeque<(u64, String)> {
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Per-connection state owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    /// Unconsumed request bytes (at most one partial line after
    /// reassembly).
    rbuf: Vec<u8>,
    /// Framed response bytes not yet accepted by the socket; `wpos` marks
    /// how far the kernel has taken them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next per-connection sequence number (batch lines consume several).
    seq: u64,
    /// Non-empty lines handed to `handle_line` / response lines received
    /// back. Equal ⇒ nothing is in flight for this connection.
    dispatched: u64,
    responded: u64,
    last_activity: Instant,
    /// Client closed its write half; trailing partial line already
    /// dispatched.
    eof: bool,
    /// Fatal socket error or invalid UTF-8: retire without waiting.
    dead: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    writer: ConnWriter,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Every dispatched line answered and every answer on the wire.
    fn settled(&self) -> bool {
        self.dispatched == self.responded && self.backlog() == 0
    }
}

/// Runs the event loop until shutdown completes its drain. See the module
/// docs for the architecture.
pub(crate) fn run(listener: &TcpListener, shared: &Shared) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    // Self-wake channel from pure std: an ephemeral loopback pair.
    let wake_listener = TcpListener::bind(("127.0.0.1", 0))?;
    let wake_tx = TcpStream::connect(wake_listener.local_addr()?)?;
    let (mut wake_rx, _) = wake_listener.accept()?;
    drop(wake_listener);
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let outbox = Arc::new(Outbox::new(wake_tx));

    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH];
    let mut draining = false;

    loop {
        if !draining && shared.shutdown.load(Ordering::SeqCst) {
            draining = true;
            poller.deregister(listener.as_raw_fd());
            // Same drain semantics as the threaded front end: everything
            // already queued gets a response, nothing new is read.
            shared.queue.close();
        }
        if draining && conns.is_empty() {
            return Ok(());
        }

        poller.wait(&mut events, poll_timeout(shared, &conns, draining))?;
        let now = Instant::now();

        let batch = std::mem::take(&mut events);
        for ev in &batch {
            match ev.token {
                TOKEN_LISTENER => {
                    if !draining {
                        accept_ready(listener, shared, &mut poller, &mut conns, &outbox, now);
                    }
                }
                TOKEN_WAKE => {
                    // Discard wake bytes; the outbox drain below does the
                    // actual work.
                    while let Ok(n) = wake_rx.read(&mut scratch) {
                        if n == 0 {
                            break;
                        }
                    }
                }
                token => {
                    let id = token - CONN_BASE;
                    let Some(c) = conns.get_mut(&id) else { continue };
                    if ev.closed {
                        c.dead = true;
                        continue;
                    }
                    if ev.readable && !draining {
                        read_ready(c, id, shared, &mut scratch, now);
                    }
                    if ev.writable {
                        flush(c);
                    }
                }
            }
        }
        events = batch;

        // Clear-then-drain: a push racing this drain either joins the
        // batch or leaves a fresh wake byte behind.
        outbox.wake_pending.store(false, Ordering::SeqCst);
        for (id, framed) in outbox.drain() {
            // A retired connection's late responses are dropped, like the
            // threaded front end's failed write to a gone client.
            if let Some(c) = conns.get_mut(&id) {
                c.responded += 1;
                c.wbuf.extend_from_slice(framed.as_bytes());
            }
        }

        // Flush fresh backlogs, retire finished connections, refresh
        // registered interest where it changed.
        let idle_limit = shared.opts.idle_timeout;
        let mut done: Vec<u64> = Vec::new();
        for (&id, c) in &mut conns {
            if c.backlog() > 0 {
                flush(c);
            }
            let idled = idle_limit
                .is_some_and(|limit| now.saturating_duration_since(c.last_activity) >= limit);
            if c.dead
                || (c.eof && c.settled())
                || (draining && c.settled())
                || (idled && c.settled())
            {
                done.push(id);
                continue;
            }
            let want = Interest {
                readable: !draining && !c.eof && c.backlog() < WBUF_MAX,
                writable: c.backlog() > 0,
            };
            if want != c.interest {
                if poller.modify(c.stream.as_raw_fd(), id + CONN_BASE, want).is_err() {
                    c.dead = true;
                    done.push(id);
                } else {
                    c.interest = want;
                }
            }
        }
        for id in done {
            if let Some(c) = conns.remove(&id) {
                poller.deregister(c.stream.as_raw_fd());
            }
        }
    }
}

/// Accepts every pending connection (edge-to-level safe: loops until
/// `WouldBlock`) and registers each with read interest.
fn accept_ready(
    listener: &TcpListener,
    shared: &Shared,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    outbox: &Arc<Outbox>,
    now: Instant,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        // Same rationale as the threaded front end: responses are single
        // small writes, so Nagle + delayed ACK would serialize latency.
        let _ = stream.set_nodelay(true);
        let id = shared.conns.fetch_add(1, Ordering::Relaxed) + 1;
        if poller.register(stream.as_raw_fd(), id + CONN_BASE, Interest::READ).is_err() {
            continue;
        }
        conns.insert(
            id,
            Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                seq: 0,
                dispatched: 0,
                responded: 0,
                last_activity: now,
                eof: false,
                dead: false,
                interest: Interest::READ,
                writer: ConnWriter::Event { conn: id, outbox: outbox.clone() },
            },
        );
    }
}

/// Reads until `WouldBlock`/EOF, reassembles lines, dispatches each
/// non-empty one through the shared [`handle_line`].
fn read_ready(c: &mut Conn, id: u64, shared: &Shared, scratch: &mut [u8], now: Instant) {
    loop {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.eof = true;
                break;
            }
            Ok(n) => {
                c.last_activity = now;
                c.rbuf.extend_from_slice(&scratch[..n]);
                if c.backlog() >= WBUF_MAX {
                    // Stop pulling more until the client reads its
                    // responses; what is buffered still dispatches.
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    while let Some(pos) = c.rbuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = c.rbuf.drain(..=pos).collect();
        dispatch(c, id, shared, &line);
        if c.dead {
            return;
        }
    }
    if c.eof && !c.rbuf.is_empty() {
        // `read_line` hands out an unterminated trailing line at EOF; the
        // reassembly path matches it so a client that sends a final
        // request without `\n` and half-closes still gets its answer.
        let line = std::mem::take(&mut c.rbuf);
        dispatch(c, id, shared, &line);
    }
}

/// Dispatches one reassembled line. Invalid UTF-8 kills the connection —
/// the threaded front end's `read_line` surfaces the same bytes as an
/// `InvalidData` read error, which also drops the connection.
fn dispatch(c: &mut Conn, id: u64, shared: &Shared, line: &[u8]) {
    let Ok(text) = std::str::from_utf8(line) else {
        c.dead = true;
        return;
    };
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return;
    }
    c.dispatched += 1;
    c.seq += handle_line(trimmed, &c.writer, shared, Instant::now(), id, c.seq);
}

/// Writes backlog until the socket stops accepting; compacts the buffer
/// when fully flushed.
fn flush(c: &mut Conn) {
    while c.wpos < c.wbuf.len() {
        match c.stream.write(&c.wbuf[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => c.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    if c.wpos == c.wbuf.len() {
        c.wbuf.clear();
        c.wpos = 0;
    }
}

/// How long the next wait may park. Wakes bound it from the side, so this
/// only needs to cover timers: the next idle deadline when idle timeouts
/// are configured, a drain re-check cap while draining, else forever.
fn poll_timeout(shared: &Shared, conns: &HashMap<u64, Conn>, draining: bool) -> Option<Duration> {
    let mut timeout = if draining { Some(DRAIN_POLL) } else { None };
    if let Some(limit) = shared.opts.idle_timeout {
        let now = Instant::now();
        for c in conns.values() {
            let deadline = c.last_activity + limit;
            let wait = deadline.saturating_duration_since(now);
            timeout = Some(timeout.map_or(wait, |t| t.min(wait)));
        }
    }
    timeout
}
