//! `mosc-serve`: a concurrent solve service over the unified solver API.
//!
//! A zero-dependency TCP daemon speaking newline-delimited JSON: each
//! request line names a solver ([`mosc_core::SolverKind`]), carries an
//! inline platform spec (the same `"platform"` object `mosc-analyze`
//! validates) and optional [`mosc_core::SolveOptions`] overrides, and gets
//! exactly one response line back. Internals:
//!
//! - a fixed worker pool over a bounded MPMC [`queue`] — a full queue sheds
//!   load with an immediate `overloaded` response instead of buffering;
//! - an LRU solution [`cache`] keyed by the canonical hash of
//!   `(platform, solver, options)`, so identical queries are answered
//!   without re-solving;
//! - per-request deadlines that abort the enumeration solvers (EXS, `BnB`)
//!   cleanly through [`mosc_core::SolveOptions::deadline`];
//! - graceful drain-then-exit on the `shutdown` op (the workspace forbids
//!   `unsafe`, so a wire op stands in for a signal handler).
//!
//! Run it as `mosc-cli serve --addr 127.0.0.1:7070`, or embed it via
//! [`Server`] as the loopback tests do.
//!
//! Observability (DESIGN.md §12): every request is stamped through its
//! lifecycle (receive → enqueue → dequeue → respond) and the phase
//! latencies land in per-op `mosc-obs` log-bucketed histograms; the
//! `metrics` wire op exposes them (plus the service counters and rate
//! gauges) as Prometheus text exposition; `--access-log` appends one JSONL
//! line per request, with the solver's span tree and kernel-counter deltas
//! attached to slow requests. Telemetry also flows through `mosc-obs`
//! (`serve.*` counters/gauges/events) and is linted by `mosc-analyze`'s
//! M060–M062 (telemetry) and M070–M073 (access log) checks.

pub mod cache;
mod metrics;
pub mod proto;
pub mod queue;
pub mod server;

pub use cache::{cache_key, cache_key_parts, CacheKey, CachedSolve, LruCache};
pub use proto::{
    parse_request, BatchRequest, BatchVariantRequest, Request, SolveRequest, SolveResponse,
};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{ServeHandle, ServeOptions, ServeStats, Server};
