//! `mosc-serve`: a concurrent solve service over the unified solver API.
//!
//! A zero-dependency TCP daemon speaking newline-delimited JSON: each
//! request line names a solver ([`mosc_core::SolverKind`]), carries an
//! inline platform spec (the same `"platform"` object `mosc-analyze`
//! validates) and optional [`mosc_core::SolveOptions`] overrides, and gets
//! exactly one response line back. Internals:
//!
//! - a fixed worker pool over a bounded MPMC [`queue`] — a full queue sheds
//!   load with an immediate `overloaded` response instead of buffering;
//! - an LRU solution [`cache`] keyed by the canonical hash of
//!   `(platform, solver, options)`, so identical queries are answered
//!   without re-solving;
//! - per-request deadlines that abort the enumeration solvers (EXS, `BnB`)
//!   cleanly through [`mosc_core::SolveOptions::deadline`];
//! - graceful drain-then-exit on the `shutdown` op (a wire op stands in
//!   for a signal handler);
//! - two interchangeable front ends behind one worker pool: the original
//!   thread-per-connection reader ([`Frontend::Threads`]) and a
//!   nonblocking event loop ([`Frontend::Evloop`], unix-only) that holds
//!   tens of thousands of connections on a single I/O thread (DESIGN.md
//!   §16). Both produce byte-identical response streams, pinned by a
//!   front-end equivalence proptest.
//!
//! The wire protocol is versioned: clients may open with a `hello` op to
//! negotiate a protocol version and discover supported ops (see
//! [`proto`]); v1 is today's line set, and unknown ops get a structured
//! `unsupported` error instead of a dropped connection.
//!
//! Run it as `mosc-cli serve --addr 127.0.0.1:7070 --frontend evloop`, or
//! embed it via [`Server::builder`] ([`ServeBuilder`]) as the loopback
//! tests do.
//!
//! Observability (DESIGN.md §12): every request is stamped through its
//! lifecycle (receive → enqueue → dequeue → respond) and the phase
//! latencies land in per-op `mosc-obs` log-bucketed histograms; the
//! `metrics` wire op exposes them (plus the service counters and rate
//! gauges) as Prometheus text exposition; `--access-log` appends one JSONL
//! line per request, with the solver's span tree and kernel-counter deltas
//! attached to slow requests. Telemetry also flows through `mosc-obs`
//! (`serve.*` counters/gauges/events) and is linted by `mosc-analyze`'s
//! M060–M062 (telemetry) and M070–M073 (access log) checks.

pub mod cache;
#[cfg(unix)]
mod evloop;
mod metrics;
#[cfg(unix)]
mod poller;
pub mod proto;
pub mod queue;
pub mod server;

pub use cache::{cache_key, cache_key_parts, CacheKey, CachedSolve, LruCache};
pub use proto::{
    fresh_span_id, fresh_trace_id, negotiate_version, parse_request, BatchRequest, BatchResponse,
    BatchVariantRequest, ErrorKind, HelloResponse, Request, Response, SolveRequest, SolveResponse,
    TraceContext, PROTO_VERSION_MAX, PROTO_VERSION_MIN,
};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{Frontend, ServeBuilder, ServeHandle, ServeOptions, ServeStats, Server};
