//! Server-side metrics: always-on service counters, per-op latency
//! histograms, a request-rate window, and zero-dependency Prometheus text
//! exposition.
//!
//! Two tiers with different switches, deliberately:
//!
//! * **Service counters** ([`mosc_obs::CounterCell`]) are always on — the
//!   `stats` wire op and the loopback tests read request/response/cache
//!   totals whether or not the process opted into telemetry. Each bump is
//!   mirrored into the matching `serve.*` [`mosc_obs::Counter`]/[`Gauge`]
//!   static so the drained telemetry JSONL (what the `M06x` lints read)
//!   stays consistent with the wire stats.
//! * **Latency histograms and the rate window** are gated on the global
//!   recorder like every other `mosc-obs` primitive: a server started
//!   without `--obs` pays one relaxed load per request phase and records
//!   nothing.
//!
//! [`Gauge`]: mosc_obs::Gauge

use mosc_core::SolverKind;
use mosc_obs::{CounterCell, Exemplar, HistoSnapshot, LogHistogram, RateWindow};
use std::fmt::Write as _;

/// Solve requests received (all ops except ping/stats/metrics/shutdown).
static REQUESTS: mosc_obs::Counter = mosc_obs::Counter::new("serve.requests");
/// Response lines written (ok, error and overloaded alike).
static RESPONSES: mosc_obs::Counter = mosc_obs::Counter::new("serve.responses");
/// Solve responses served from the LRU cache.
static CACHE_HITS: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_hits");
/// Solve requests that missed the cache and went to a worker.
static CACHE_MISSES: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_misses");
/// Entries displaced by LRU eviction.
static CACHE_EVICTIONS: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_evictions");
/// Requests shed with an `overloaded` response (queue full or draining).
static REJECTED: mosc_obs::Counter = mosc_obs::Counter::new("serve.rejected");
/// Requests whose deadline expired (in queue or mid-solve).
static DEADLINE_EXCEEDED: mosc_obs::Counter = mosc_obs::Counter::new("serve.deadline_exceeded");
/// Queue depth after the most recent push/pop.
static QUEUE_DEPTH: mosc_obs::Gauge = mosc_obs::Gauge::new("serve.queue_depth");
/// Highest queue depth observed since start.
static QUEUE_PEAK: mosc_obs::Gauge = mosc_obs::Gauge::new("serve.queue_peak");

/// One named histogram snapshot plus its stamped `(bucket, exemplar)`
/// pairs, as handed to the drain-time `hist_snapshot` serializer.
pub(crate) type NamedSnapshot = (&'static str, HistoSnapshot, Vec<(usize, Exemplar)>);

/// The three request phases measured per solve op.
pub(crate) struct OpLatency {
    /// Enqueue → dequeue (0 for reader-thread cache hits).
    pub queue_wait: LogHistogram,
    /// Dequeue → response written.
    pub service: LogHistogram,
    /// Line received → response written.
    pub total: LogHistogram,
}

impl OpLatency {
    const fn new(names: (&'static str, &'static str, &'static str)) -> Self {
        Self {
            queue_wait: LogHistogram::new(names.0),
            service: LogHistogram::new(names.1),
            total: LogHistogram::new(names.2),
        }
    }
}

/// Histogram names per solver kind. A `const` table (not `format!`) because
/// [`LogHistogram::new`] wants `&'static str` and the whole metrics struct
/// is `const`-constructible.
const fn latency_names(kind: SolverKind) -> (&'static str, &'static str, &'static str) {
    match kind {
        SolverKind::Lns => {
            ("serve.latency.lns.queue_wait", "serve.latency.lns.service", "serve.latency.lns.total")
        }
        SolverKind::Exs => {
            ("serve.latency.exs.queue_wait", "serve.latency.exs.service", "serve.latency.exs.total")
        }
        SolverKind::ExsBnb => (
            "serve.latency.exs-bnb.queue_wait",
            "serve.latency.exs-bnb.service",
            "serve.latency.exs-bnb.total",
        ),
        SolverKind::Ao => {
            ("serve.latency.ao.queue_wait", "serve.latency.ao.service", "serve.latency.ao.total")
        }
        SolverKind::Pco => {
            ("serve.latency.pco.queue_wait", "serve.latency.pco.service", "serve.latency.pco.total")
        }
        SolverKind::Governor => (
            "serve.latency.governor.queue_wait",
            "serve.latency.governor.service",
            "serve.latency.governor.total",
        ),
    }
}

/// Index of `kind` into the per-op histogram array ([`SolverKind::all`]
/// order).
const fn op_index(kind: SolverKind) -> usize {
    match kind {
        SolverKind::Lns => 0,
        SolverKind::Exs => 1,
        SolverKind::ExsBnb => 2,
        SolverKind::Ao => 3,
        SolverKind::Pco => 4,
        SolverKind::Governor => 5,
    }
}

/// All per-server metric state (owned by `Shared`, one per server).
pub(crate) struct ServeMetrics {
    pub requests: CounterCell,
    pub responses: CounterCell,
    pub cache_hits: CounterCell,
    pub cache_misses: CounterCell,
    pub cache_evictions: CounterCell,
    pub rejected: CounterCell,
    pub deadline_exceeded: CounterCell,
    pub malformed: CounterCell,
    pub queue_peak: CounterCell,
    /// Latency per solver kind, [`SolverKind::all`] order.
    solve: [OpLatency; 6],
    /// Latency of the protocol ops (ping/stats/metrics/shutdown) and parse
    /// errors; they never queue, so only `total` is meaningful.
    proto: LogHistogram,
    /// Solve-request arrival rate.
    pub rate: RateWindow,
}

impl ServeMetrics {
    pub(crate) const fn new() -> Self {
        Self {
            requests: CounterCell::new(),
            responses: CounterCell::new(),
            cache_hits: CounterCell::new(),
            cache_misses: CounterCell::new(),
            cache_evictions: CounterCell::new(),
            rejected: CounterCell::new(),
            deadline_exceeded: CounterCell::new(),
            malformed: CounterCell::new(),
            queue_peak: CounterCell::new(),
            solve: [
                OpLatency::new(latency_names(SolverKind::Lns)),
                OpLatency::new(latency_names(SolverKind::Exs)),
                OpLatency::new(latency_names(SolverKind::ExsBnb)),
                OpLatency::new(latency_names(SolverKind::Ao)),
                OpLatency::new(latency_names(SolverKind::Pco)),
                OpLatency::new(latency_names(SolverKind::Governor)),
            ],
            proto: LogHistogram::new("serve.latency.proto.total"),
            rate: RateWindow::new(),
        }
    }

    // -- counter bumps, mirrored into the serve.* obs statics -------------

    pub(crate) fn on_request(&self) {
        self.requests.incr();
        REQUESTS.incr();
        self.rate.tick(1);
    }

    pub(crate) fn on_response(&self) {
        self.responses.incr();
        RESPONSES.incr();
    }

    pub(crate) fn on_cache_hit(&self) {
        self.cache_hits.incr();
        CACHE_HITS.incr();
    }

    pub(crate) fn on_cache_miss(&self) {
        self.cache_misses.incr();
        CACHE_MISSES.incr();
    }

    pub(crate) fn on_cache_eviction(&self) {
        self.cache_evictions.incr();
        CACHE_EVICTIONS.incr();
    }

    pub(crate) fn on_rejected(&self) {
        self.rejected.incr();
        REJECTED.incr();
    }

    pub(crate) fn on_deadline_exceeded(&self) {
        self.deadline_exceeded.incr();
        DEADLINE_EXCEEDED.incr();
    }

    pub(crate) fn on_malformed(&self) {
        self.malformed.incr();
    }

    pub(crate) fn on_queue_depth(&self, depth: u64) {
        QUEUE_DEPTH.set(depth as f64);
        self.queue_peak.record_max(depth);
        QUEUE_PEAK.set(self.queue_peak.get() as f64);
    }

    // -- latency ----------------------------------------------------------

    /// Records one completed solve request's phase latencies (seconds).
    /// A nonzero `trace_id` stamps each phase bucket's most-recent exemplar,
    /// linking the exposition back to the access log.
    pub(crate) fn record_solve(
        &self,
        kind: SolverKind,
        queue_wait: f64,
        service: f64,
        total: f64,
        trace_id: u128,
    ) {
        let op = &self.solve[op_index(kind)];
        op.queue_wait.record_traced(queue_wait, trace_id);
        op.service.record_traced(service, trace_id);
        op.total.record_traced(total, trace_id);
    }

    /// Records one protocol-op (or parse-error) total latency.
    pub(crate) fn record_proto(&self, total: f64) {
        self.proto.record(total);
    }

    /// Total solve latency merged across every solver kind — the
    /// service-wide quantile the `stats` op reports. Mergeable snapshots
    /// (one fixed bucket layout) make this exact up to bucket width.
    pub(crate) fn solve_total(&self) -> HistoSnapshot {
        let mut merged = HistoSnapshot::empty();
        for op in &self.solve {
            merged.merge(&op.total.snapshot());
        }
        merged
    }

    /// Every non-empty latency histogram as `(name, snapshot, exemplars)`,
    /// for the drain-time `hist_snapshot` access-log lines.
    pub(crate) fn latency_snapshots(&self) -> Vec<NamedSnapshot> {
        let mut out = Vec::new();
        for op in &self.solve {
            for h in [&op.queue_wait, &op.service, &op.total] {
                if !h.is_empty() {
                    out.push((h.name(), h.snapshot(), h.exemplars()));
                }
            }
        }
        if !self.proto.is_empty() {
            out.push((self.proto.name(), self.proto.snapshot(), self.proto.exemplars()));
        }
        out
    }

    /// The exemplar of the highest non-empty total-latency bucket across
    /// every solver kind: the slowest recently-traced solve, the one a
    /// `stats` reader would want to open first. `None` until a traced solve
    /// has been recorded.
    pub(crate) fn slow_exemplar(&self) -> Option<Exemplar> {
        let mut best: Option<(usize, Exemplar)> = None;
        for op in &self.solve {
            for (i, e) in op.total.exemplars() {
                if best.as_ref().is_none_or(|&(bi, _)| i >= bi) {
                    best = Some((i, e));
                }
            }
        }
        best.map(|(_, e)| e)
    }

    // -- exposition -------------------------------------------------------

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# TYPE` comments, counters, gauges, and cumulative `le`-labelled
    /// histogram series. Buckets that add no information (no new samples)
    /// are elided except the mandatory `+Inf` bound, which keeps the
    /// exposition compact while staying cumulative and monotone.
    pub(crate) fn render_prometheus(
        &self,
        queue_depth: u64,
        cache_len: u64,
        uptime_s: f64,
    ) -> String {
        let mut out = String::with_capacity(4096);
        for (name, v) in [
            ("mosc_serve_requests_total", self.requests.get()),
            ("mosc_serve_responses_total", self.responses.get()),
            ("mosc_serve_cache_hits_total", self.cache_hits.get()),
            ("mosc_serve_cache_misses_total", self.cache_misses.get()),
            ("mosc_serve_cache_evictions_total", self.cache_evictions.get()),
            ("mosc_serve_rejected_total", self.rejected.get()),
            ("mosc_serve_deadline_exceeded_total", self.deadline_exceeded.get()),
            ("mosc_serve_malformed_total", self.malformed.get()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        let merged = self.solve_total();
        let q = |p: f64| merged.quantile(p).unwrap_or(0.0);
        for (name, v) in [
            ("mosc_serve_queue_depth", queue_depth as f64),
            ("mosc_serve_queue_peak", self.queue_peak.get() as f64),
            ("mosc_serve_cache_len", cache_len as f64),
            ("mosc_serve_uptime_seconds", uptime_s),
            ("mosc_serve_req_per_s", self.rate.per_sec()),
            ("mosc_serve_latency_p50_seconds", q(0.5)),
            ("mosc_serve_latency_p90_seconds", q(0.9)),
            ("mosc_serve_latency_p99_seconds", q(0.99)),
            ("mosc_serve_latency_p999_seconds", q(0.999)),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", prom_f64(v));
        }
        out.push_str("# TYPE mosc_serve_latency_seconds histogram\n");
        for kind in SolverKind::all() {
            let op = &self.solve[op_index(kind)];
            for (phase, h) in
                [("queue_wait", &op.queue_wait), ("service", &op.service), ("total", &op.total)]
            {
                render_histogram(&mut out, kind.id(), phase, h);
            }
        }
        render_histogram(&mut out, "proto", "total", &self.proto);
        out
    }
}

/// One histogram's series block; empty histograms emit nothing. Buckets
/// with a stamped exemplar carry it as an `OpenMetrics` exemplar suffix
/// (`... # {trace_id="<hex>"} <value>`), the join key back into the access
/// log (the M124 lint verifies the join).
fn render_histogram(out: &mut String, op: &str, phase: &str, h: &LogHistogram) {
    if h.is_empty() {
        return;
    }
    let snap = h.snapshot();
    let labels = format!("op=\"{}\",phase=\"{}\"", prom_label(op), prom_label(phase));
    let mut prev = 0u64;
    let cumulative = snap.cumulative();
    for (i, &(le, cum)) in cumulative.iter().enumerate() {
        let last = i == cumulative.len() - 1;
        if cum == prev && !last {
            continue;
        }
        prev = cum;
        let bound = if last { "+Inf".to_owned() } else { prom_f64(le) };
        let _ = write!(out, "mosc_serve_latency_seconds_bucket{{{labels},le=\"{bound}\"}} {cum}");
        if let Some(e) = h.exemplar(i) {
            let _ = write!(out, " # {{trace_id=\"{:032x}\"}} {}", e.trace_id, prom_f64(e.value));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "mosc_serve_latency_seconds_sum{{{labels}}} {}", prom_f64(snap.sum));
    let _ = writeln!(out, "mosc_serve_latency_seconds_count{{{labels}}} {}", snap.count);
}

/// Escapes one Prometheus label value. The text format's quoted-string
/// escapes are a strict subset of JSON's: backslash and double quote escape
/// exactly as `mosc_analyze::json::json_string` writes them, plus `\n` for
/// newlines (Prometheus label values never contain other control escapes).
/// Sharing the convention keeps the exposition and the JSON artifacts
/// greppable by the same trace-id strings.
fn prom_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Prometheus float formatting: shortest round-trip, `+Inf`/`-Inf`/`NaN`
/// spelled the Prometheus way.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_counts_match_recorded_requests() {
        // Gated primitives need the recorder; the process-global switch is
        // shared with the loopback tests, but enabling is idempotent and
        // this test only reads its own `ServeMetrics` instance.
        mosc_obs::enable();
        let m = ServeMetrics::new();
        for _ in 0..5 {
            m.on_request();
            m.record_solve(SolverKind::Ao, 1e-4, 2e-3, 2.1e-3, 0x00c0_ffee);
        }
        m.on_request();
        m.record_solve(SolverKind::Governor, 0.0, 0.5, 0.5, 0);
        m.on_queue_depth(3);
        let text = m.render_prometheus(1, 2, 12.5);

        assert!(text.contains("# TYPE mosc_serve_requests_total counter"), "{text}");
        assert!(text.contains("mosc_serve_requests_total 6"), "{text}");
        assert!(text.contains("mosc_serve_queue_peak 3"), "{text}");
        assert!(text.contains("# TYPE mosc_serve_latency_seconds histogram"), "{text}");
        assert!(
            text.contains("mosc_serve_latency_seconds_count{op=\"ao\",phase=\"total\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("mosc_serve_latency_seconds_count{op=\"governor\",phase=\"total\"} 1"),
            "{text}"
        );
        // The +Inf bucket is mandatory and equals the series count.
        assert!(
            text.contains(
                "mosc_serve_latency_seconds_bucket{op=\"ao\",phase=\"total\",le=\"+Inf\"} 5"
            ),
            "{text}"
        );
        // Traced solves surface as OpenMetrics exemplars on their bucket.
        assert!(
            text.contains(" # {trace_id=\"00000000000000000000000000c0ffee\"}"),
            "traced buckets must carry their exemplar suffix:\n{text}"
        );
        // Bucket series are cumulative and monotone per (op, phase). Any
        // exemplar suffix sits after the sample value, behind " # ".
        let mut per_series: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for line in text.lines().filter(|l| l.starts_with("mosc_serve_latency_seconds_bucket")) {
            let sample = line.split(" # ").next().unwrap();
            let (series, value) = sample.rsplit_once(' ').unwrap();
            let v: u64 = value.parse().unwrap();
            let prev = per_series.entry(series.split("le=").next().unwrap()).or_insert(0);
            assert!(v >= *prev, "non-monotone bucket series: {line}");
            *prev = v;
        }
        // The merged solve-total quantile sees all 6 samples.
        let merged = m.solve_total();
        assert_eq!(merged.count, 6);
        assert!(merged.quantile(0.5).unwrap() < 0.1);
        // Quantile gauges are exposed (p999 included) and read off the
        // same merged histogram.
        for (gauge, p) in [
            ("mosc_serve_latency_p50_seconds", 0.5),
            ("mosc_serve_latency_p99_seconds", 0.99),
            ("mosc_serve_latency_p999_seconds", 0.999),
        ] {
            let line = text
                .lines()
                .find(|l| l.starts_with(gauge) && !l.starts_with('#'))
                .unwrap_or_else(|| panic!("missing gauge {gauge}:\n{text}"));
            let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(
                (v - merged.quantile(p).unwrap()).abs() < 1e-12,
                "{gauge} diverges from the merged histogram: {line}"
            );
        }
    }

    #[test]
    fn hostile_label_values_escape_like_json_strings() {
        // The op/phase labels are static today, but the escaping must hold
        // for any value the renderer is ever handed: backslash and quote
        // escape exactly as the JSON serializer writes them, newline as \n.
        mosc_obs::enable();
        let h = LogHistogram::new("metrics.hostile_labels");
        h.record(0.001);
        let mut out = String::new();
        render_histogram(&mut out, "evil\"op\\name", "pha\nse", &h);
        assert!(
            out.contains("op=\"evil\\\"op\\\\name\",phase=\"pha\\nse\""),
            "hostile label values must escape: {out}"
        );
        assert!(!out.contains("op=\"evil\"op"), "raw quote must never reach a label: {out}");
        // The shared convention: on quote and backslash, the JSON string
        // serializer produces the identical escape bytes.
        let json = mosc_analyze::json::json_string("\"\\");
        assert_eq!(json, "\"\\\"\\\\\"");
        assert_eq!(prom_label("\"\\"), &json[1..json.len() - 1]);
    }

    #[test]
    fn slow_exemplar_picks_the_highest_traced_bucket() {
        mosc_obs::enable();
        let m = ServeMetrics::new();
        assert!(m.slow_exemplar().is_none());
        m.record_solve(SolverKind::Ao, 1e-4, 2e-3, 2.1e-3, 0xfa57);
        m.record_solve(SolverKind::Pco, 1e-4, 0.4, 0.5, 0x510);
        m.record_solve(SolverKind::Exs, 1e-4, 5e-3, 6e-3, 0xbeef);
        let slow = m.slow_exemplar().expect("traced solves must yield an exemplar");
        assert_eq!(slow.trace_id, 0x510, "the slowest traced solve wins");
        assert!((slow.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histograms_are_elided() {
        let m = ServeMetrics::new();
        let text = m.render_prometheus(0, 0, 0.0);
        assert!(!text.contains("latency_seconds_bucket"), "{text}");
        // Counter and gauge families are always present.
        assert!(text.contains("mosc_serve_requests_total 0"), "{text}");
        assert!(text.contains("mosc_serve_req_per_s 0.0"), "{text}");
    }
}
