//! Readiness polling for the event-loop front end: a minimal epoll/poll(2)
//! wrapper over raw syscalls.
//!
//! std exposes no socket-readiness API, and the workspace takes no
//! crates.io dependencies, so this module declares the four syscalls it
//! needs (`poll`, `epoll_create1`, `epoll_ctl`, `epoll_wait`, plus `close`)
//! itself. Two interchangeable backends sit behind the same [`Poller`]
//! surface:
//!
//! * **epoll** (Linux, the default): interest is registered once per fd
//!   with `epoll_ctl`, waits are O(ready). Level-triggered, matching the
//!   event loop's "process until `WouldBlock`" read/write style.
//! * **poll(2)** (every other unix, or Linux with the `poll-backend`
//!   feature): the interest list is rebuilt into a `pollfd` array per
//!   wait. O(fds) per wait, but fully portable — the fallback the tentpole
//!   requires, and CI exercises it explicitly.
//!
//! All `unsafe` in the crate lives in the [`sys`] module below, one
//! documented block per call.

use std::time::Duration;

/// Token values are caller-chosen; the event loop uses fixed tokens for
/// the listener and waker and `conn_id + CONN_BASE` for connections.
pub(crate) type Token = u64;

/// What a file descriptor is ready for (or what to watch it for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Interest {
    /// Watch for/observed readability (incoming bytes, accepts, EOF).
    pub readable: bool,
    /// Watch for/observed writability (send-buffer space).
    pub writable: bool,
}

impl Interest {
    /// Readable-only interest.
    pub(crate) const READ: Self = Self { readable: true, writable: false };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub token: Token,
    /// Ready to read (also set on EOF/hangup so the read path observes it).
    pub readable: bool,
    /// Ready to write.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is done for.
    pub closed: bool,
}

/// The raw syscall layer: the only `unsafe` in the workspace. Every call
/// is a thin wrapper whose safety argument is stated at the call site;
/// nothing here retains pointers past the call.
#[allow(unsafe_code)]
mod sys {
    #[cfg(any(not(target_os = "linux"), feature = "poll-backend"))]
    pub(crate) use poll2::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

    /// The poll(2) syscall; compiled only when the poll backend is.
    #[cfg(any(not(target_os = "linux"), feature = "poll-backend"))]
    mod poll2 {
        use std::io;
        use std::os::raw::c_int;

        /// `struct pollfd` from `<poll.h>`: identical layout on every
        /// unix.
        #[repr(C)]
        #[derive(Debug, Clone, Copy)]
        pub(crate) struct PollFd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        pub(crate) const POLLIN: i16 = 0x001;
        pub(crate) const POLLOUT: i16 = 0x004;
        pub(crate) const POLLERR: i16 = 0x008;
        pub(crate) const POLLHUP: i16 = 0x010;
        pub(crate) const POLLNVAL: i16 = 0x020;

        /// `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
        /// BSDs/macOS.
        #[cfg(target_os = "linux")]
        type NfdsT = std::os::raw::c_ulong;
        #[cfg(not(target_os = "linux"))]
        type NfdsT = std::os::raw::c_uint;

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        }

        /// poll(2) over the given descriptors; `timeout_ms < 0` blocks
        /// indefinitely. Returns how many entries have non-zero
        /// `revents`.
        pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
            // SAFETY: `fds` points at `fds.len()` initialized, properly
            // laid out (#[repr(C)]) pollfd records that live for the
            // whole call; the kernel writes only their `revents` fields.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(rc as usize)
            }
        }
    }

    /// close(2); used for the epoll instance fd, which std never owns.
    #[cfg(all(target_os = "linux", not(feature = "poll-backend")))]
    pub(crate) fn close_fd(fd: std::os::fd::RawFd) {
        use std::os::raw::c_int;
        extern "C" {
            fn close(fd: c_int) -> c_int;
        }
        // SAFETY: called exactly once, from Drop, on an fd this module
        // created via epoll_create1 and never handed out.
        let _ = unsafe { close(fd) };
    }

    /// The epoll syscalls; compiled only when the epoll backend is.
    #[cfg(all(target_os = "linux", not(feature = "poll-backend")))]
    pub(crate) mod epoll {
        use std::io;
        use std::os::fd::RawFd;
        use std::os::raw::c_int;

        /// `struct epoll_event`: packed on x86-64 (kernel ABI), natural
        /// alignment elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Debug, Clone, Copy)]
        pub(crate) struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub(crate) const EPOLLIN: u32 = 0x001;
        pub(crate) const EPOLLOUT: u32 = 0x004;
        pub(crate) const EPOLLERR: u32 = 0x008;
        pub(crate) const EPOLLHUP: u32 = 0x010;
        pub(crate) const EPOLLRDHUP: u32 = 0x2000;

        pub(crate) const EPOLL_CTL_ADD: c_int = 1;
        pub(crate) const EPOLL_CTL_DEL: c_int = 2;
        pub(crate) const EPOLL_CTL_MOD: c_int = 3;

        const EPOLL_CLOEXEC: c_int = 0o2000000;

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        /// A fresh close-on-exec epoll instance.
        pub(crate) fn create() -> io::Result<RawFd> {
            // SAFETY: no pointers involved; the returned fd (or -1) is
            // checked before use.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(fd)
            }
        }

        /// `epoll_ctl(2)` with an optional event record (DEL takes none).
        pub(crate) fn ctl(
            epfd: RawFd,
            op: c_int,
            fd: RawFd,
            mut event: Option<EpollEvent>,
        ) -> io::Result<()> {
            let ptr: *mut EpollEvent =
                event.as_mut().map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (permitted for EPOLL_CTL_DEL on
            // any modern kernel) or points at a live, properly laid out
            // EpollEvent for the duration of the call; the kernel copies
            // it and retains nothing.
            let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// `epoll_wait(2)` into `events`; `timeout_ms < 0` blocks. Returns
        /// the ready count.
        pub(crate) fn wait(
            epfd: RawFd,
            events: &mut [EpollEvent],
            timeout_ms: c_int,
        ) -> io::Result<usize> {
            // SAFETY: `events` points at `events.len()` writable records
            // that live for the whole call; the kernel writes at most
            // `maxevents` of them and retains nothing.
            let rc =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(rc as usize)
            }
        }
    }
}

/// Converts an optional wait budget to the millisecond convention both
/// syscalls share: `-1` blocks, `0` polls, else round **up** so a 100µs
/// budget does not spin as `0`.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = i32::try_from(d.as_millis()).unwrap_or(i32::MAX);
            if ms == 0 && d.as_nanos() > 0 {
                1
            } else {
                ms
            }
        }
    }
}

/// The epoll backend (Linux default).
#[cfg(all(target_os = "linux", not(feature = "poll-backend")))]
mod backend {
    use super::sys::epoll::{
        self, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, EPOLL_CTL_ADD,
        EPOLL_CTL_DEL, EPOLL_CTL_MOD,
    };
    use super::{sys, Interest, PollEvent, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Readiness poller: epoll flavor.
    pub(crate) struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self { epfd: epoll::create()?, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn event(token: Token, interest: Interest) -> EpollEvent {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            EpollEvent { events, data: token }
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            epoll::ctl(self.epfd, EPOLL_CTL_ADD, fd, Some(Self::event(token, interest)))
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            epoll::ctl(self.epfd, EPOLL_CTL_MOD, fd, Some(Self::event(token, interest)))
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) {
            let _ = epoll::ctl(self.epfd, EPOLL_CTL_DEL, fd, None);
        }

        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let n = match epoll::wait(self.epfd, &mut self.buf, super::timeout_ms(timeout)) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) record before use.
                let (bits, data) = (ev.events, ev.data);
                events.push(PollEvent {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

/// The portable poll(2) backend.
#[cfg(any(not(target_os = "linux"), feature = "poll-backend"))]
mod backend {
    use super::sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
    use super::{sys, Interest, PollEvent, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Readiness poller: poll(2) flavor. The interest list is the source
    /// of truth; each wait rebuilds the `pollfd` array from it.
    pub(crate) struct Poller {
        entries: Vec<(RawFd, Token, Interest)>,
        buf: Vec<PollFd>,
    }

    impl Poller {
        #[allow(clippy::unnecessary_wraps)] // signature mirrors the epoll backend
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self { entries: Vec::new(), buf: Vec::new() })
        }

        #[allow(clippy::unnecessary_wraps)] // signature mirrors the epoll backend
        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) {
            self.entries.retain(|&(entry_fd, _, _)| entry_fd != fd);
        }

        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            self.buf.clear();
            for &(fd, _, interest) in &self.entries {
                let mut bits = 0i16;
                if interest.readable {
                    bits |= POLLIN;
                }
                if interest.writable {
                    bits |= POLLOUT;
                }
                self.buf.push(PollFd { fd, events: bits, revents: 0 });
            }
            let n = match sys::poll_fds(&mut self.buf, super::timeout_ms(timeout)) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            if n == 0 {
                return Ok(());
            }
            for (slot, &(_, token, _)) in self.buf.iter().zip(&self.entries) {
                let got = slot.revents;
                if got == 0 {
                    continue;
                }
                events.push(PollEvent {
                    token,
                    readable: got & (POLLIN | POLLHUP) != 0,
                    writable: got & POLLOUT != 0,
                    closed: got & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

pub(crate) use backend::Poller;
