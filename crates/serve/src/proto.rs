//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in any order across
//! requests (responses carry the request's `id`). Requests are parsed with
//! the `mosc-analyze` JSON reader; responses are written by the canonical
//! serializer in this module, which emits object members in a fixed order
//! and floats via Rust's shortest-round-trip formatting, so a response can
//! be parsed back into the exact same values (the property tests pin this).
//!
//! ## Requests
//!
//! ```json
//! {"id":"r1","op":"solve","solver":"ao","platform":{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0},"options":{"threads":2,"deadline_ms":5000},"want_schedule":false}
//! {"id":"b1","op":"solve_batch","platform":{...},"variants":[{"solver":"ao"},{"solver":"pco","options":{"max_m":8}}]}
//! {"id":"p1","op":"ping"}
//! {"id":"s1","op":"stats"}
//! {"id":"m1","op":"metrics"}
//! {"id":"q1","op":"shutdown"}
//! {"id":"h1","op":"hello","max_version":1}
//! ```
//!
//! `op` defaults to `"solve"`. The `platform` object uses the same schema
//! as the `mosc-cli analyze`/`profile` spec files' `"platform"` section.
//! Every `options` member is optional and defaults to
//! [`SolveOptions::default`]; `deadline_ms` maps to
//! [`SolveOptions::deadline`].
//!
//! `solve_batch` solves many option-variants of **one** platform in a
//! single dispatch: the platform is resolved (and its thermal kernel
//! interned) once, the variants fan out over the worker's threads, and the
//! response is one line carrying a `results` array — per-variant objects in
//! request order, each shaped exactly like a single-solve `ok`/`error`
//! response with id `"<batch id>#<index>"`. The batch line also reports
//! whether the platform came from the interning registry
//! (`"registry":"warm"`) or had to be built (`"cold"`).
//!
//! ## Responses
//!
//! ```json
//! {"id":"r1","status":"ok","solver":"ao","throughput":1.05,"peak_c":54.2,"feasible":true,"m":3,"wall_ms":12.5,"cached":false,"stats":{...}}
//! {"id":"r2","status":"error","kind":"infeasible","message":"..."}
//! {"id":"r3","status":"overloaded","message":"queue full"}
//! ```
//!
//! `status` is `"ok"`, `"error"`, or `"overloaded"`; error responses
//! classify themselves through `kind` (see [`ErrorKind`]). Both directions
//! of the wire are typed: [`Request`] and [`Response`] each have exactly
//! one parse/serialize pair, and the property tests pin that a value
//! round-trips through its own lines bit-identically.
//!
//! ## Versioning
//!
//! The `hello` op negotiates a protocol version. Version **1** is the line
//! protocol this module documents; a client sends its newest understood
//! version as `max_version` (optional — absent means "newest you have")
//! and the daemon answers with the version both sides will speak plus its
//! full supported range and op list:
//!
//! | version | contents |
//! |---------|----------|
//! | 1       | `solve`, `solve_batch`, `ping`, `stats`, `metrics`, `shutdown`, `hello`; responses `ok`/`error`/`overloaded` |
//! | 2       | v1 plus distributed tracing: `solve`/`solve_batch` accept an optional `trace` member (`"<128-bit trace id>-<64-bit parent span id>"`, lower-case hex) that the daemon continues through worker handoff and batch fan-out into the access log, flight dumps and histogram exemplars |
//!
//! Unknown ops never drop the connection: they answer a structured
//! `{"status":"error","kind":"unsupported",...}` line naming the op, so a
//! newer client degrades gracefully against an older daemon. The v2 `trace`
//! member degrades the same way downward: a v1 daemon ignores unknown
//! request members, so a v2 client that sends trace context to an old
//! daemon still gets its solve answered — only the trace is dropped.

use mosc_analyze::json::Value;
use mosc_core::{AlgoError, SolveOptions, SolverKind, SolverStats};
use std::time::Duration;

/// Oldest protocol version this build can still speak.
pub const PROTO_VERSION_MIN: u32 = 1;
/// Newest protocol version this build speaks (and prefers).
pub const PROTO_VERSION_MAX: u32 = 2;

/// Every op name the daemon understands, sorted; advertised by `hello`.
pub const OPS: &[&str] = &["hello", "metrics", "ping", "shutdown", "solve", "solve_batch", "stats"];

/// Picks the protocol version for a session from the client's advertised
/// `max_version` (`None` = "newest you have"): the newest version both
/// sides understand.
///
/// # Errors
/// A human-readable message when the client's newest version predates
/// everything this build can speak.
pub fn negotiate_version(client_max: Option<u32>) -> Result<u32, String> {
    let client_max = client_max.unwrap_or(PROTO_VERSION_MAX);
    if client_max < PROTO_VERSION_MIN {
        return Err(format!(
            "protocol version {client_max} is no longer spoken (oldest supported: {PROTO_VERSION_MIN})"
        ));
    }
    Ok(client_max.min(PROTO_VERSION_MAX))
}

/// Wire trace context (protocol v2): the 128-bit trace id naming one
/// end-to-end operation plus the 64-bit id of the span that dispatched this
/// request — W3C-traceparent-style, spelled `"<32 hex>-<16 hex>"` on the
/// wire. A daemon that receives one continues the trace: it mints a fresh
/// span id for its own work, records the client's span as the parent, and
/// stamps all three ids on the access-log entry, so a cross-process hop is
/// one more parent/child edge in the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit id shared by every span of one distributed operation.
    /// Never zero on a well-formed wire line.
    pub trace_id: u128,
    /// The 64-bit id of the client-side span that issued this request.
    pub parent_id: u64,
}

impl TraceContext {
    /// Mints a fresh root context: a new trace id and a new origin span id.
    #[must_use]
    pub fn root() -> Self {
        Self { trace_id: fresh_trace_id(), parent_id: fresh_span_id() }
    }

    /// The canonical wire spelling: `"<trace_id:032x>-<parent_id:016x>"`.
    #[must_use]
    pub fn to_wire(&self) -> String {
        format!("{:032x}-{:016x}", self.trace_id, self.parent_id)
    }

    /// Parses the wire spelling written by [`Self::to_wire`]: exactly 32
    /// lower-case hex digits, a dash, exactly 16 lower-case hex digits,
    /// with a nonzero trace id.
    #[must_use]
    pub fn parse_wire(s: &str) -> Option<Self> {
        let (t, p) = s.split_once('-')?;
        if t.len() != 32 || p.len() != 16 {
            return None;
        }
        let lower_hex =
            |s: &str| s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        if !lower_hex(t) || !lower_hex(p) {
            return None;
        }
        let trace_id = u128::from_str_radix(t, 16).ok()?;
        let parent_id = u64::from_str_radix(p, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(Self { trace_id, parent_id })
    }
}

/// A process-global splitmix64 stream for span/trace ids: seeded once from
/// the wall clock and address-space entropy, stepped with an atomic
/// counter. Not cryptographic — ids only need to be unique enough that two
/// concurrent requests never collide in one trace store.
fn id_entropy() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9e37_79b9_7f4a_7c15, |d| d.as_nanos() as u64);
        // The address of a static differs across ASLR'd processes, so two
        // daemons started the same nanosecond still diverge.
        let aslr = std::ptr::addr_of!(COUNTER) as u64;
        seed = (nanos ^ aslr.rotate_left(32)) | 1;
        let _ = SEED.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
        seed = SEED.load(Ordering::Relaxed);
    }
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints a fresh nonzero 128-bit trace id.
#[must_use]
pub fn fresh_trace_id() -> u128 {
    loop {
        let id = (u128::from(id_entropy()) << 64) | u128::from(id_entropy());
        if id != 0 {
            return id;
        }
    }
}

/// Mints a fresh nonzero 64-bit span id.
#[must_use]
pub fn fresh_span_id() -> u64 {
    loop {
        let id = id_entropy();
        if id != 0 {
            return id;
        }
    }
}

/// What went wrong, as carried on the wire in an error response's `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a well-formed request.
    Parse,
    /// The line parsed but named an op this daemon does not implement.
    Unsupported,
    /// The request was well-formed but semantically wrong (bad platform,
    /// invalid option combination, unspeakable protocol version).
    Usage,
    /// No schedule satisfies the thermal constraint.
    Infeasible,
    /// The per-request deadline expired before the response was ready.
    Deadline,
    /// An internal invariant failed; the request was not at fault.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of this kind.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::Unsupported => "unsupported",
            Self::Usage => "usage",
            Self::Infeasible => "infeasible",
            Self::Deadline => "deadline",
            Self::Internal => "internal",
        }
    }

    /// Classifies a solver failure for the wire.
    #[must_use]
    pub fn of_algo(e: &AlgoError) -> Self {
        match e {
            AlgoError::Infeasible { .. } => Self::Infeasible,
            AlgoError::DeadlineExceeded => Self::Deadline,
            AlgoError::InvalidOptions { .. } => Self::Usage,
            AlgoError::Sched(_) => Self::Internal,
        }
    }
}

impl std::str::FromStr for ErrorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "parse" => Ok(Self::Parse),
            "unsupported" => Ok(Self::Unsupported),
            "usage" => Ok(Self::Usage),
            "infeasible" => Ok(Self::Infeasible),
            "deadline" => Ok(Self::Deadline),
            "internal" => Ok(Self::Internal),
            other => Err(format!("unknown error kind '{other}'")),
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// A malformed request line: the human-readable reason, echoed back in the
/// error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong with the line.
    pub message: String,
    /// The request id, when one could be recovered before the failure.
    pub id: String,
    /// How the error response should classify itself: [`ErrorKind::Parse`]
    /// for malformed lines, [`ErrorKind::Unsupported`] for well-formed
    /// lines naming an op this daemon does not implement.
    pub kind: ErrorKind,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a solver (the default op).
    Solve(SolveRequest),
    /// Run several option-variants against one shared platform.
    SolveBatch(BatchRequest),
    /// Liveness probe.
    Ping {
        /// Request id to echo.
        id: String,
    },
    /// Service counter snapshot (JSON `stats` payload).
    Stats {
        /// Request id to echo.
        id: String,
    },
    /// Prometheus text exposition: the response's `metrics` member is the
    /// full scrape body (counters, gauges, per-op latency histograms) as
    /// one JSON-escaped string.
    Metrics {
        /// Request id to echo.
        id: String,
    },
    /// Drain in-flight work, then exit. Replaces a signal handler: the
    /// workspace forbids `unsafe`, so POSIX signals cannot be caught and
    /// graceful shutdown is a protocol op instead.
    Shutdown {
        /// Request id to echo.
        id: String,
    },
    /// Version handshake: advertise the newest protocol version the client
    /// understands, get back the negotiated session version plus the
    /// daemon's supported range and op list.
    Hello {
        /// Request id to echo.
        id: String,
        /// Newest protocol version the client speaks; `None` means "the
        /// newest you have".
        max_version: Option<u32>,
    },
}

impl Request {
    /// The request's correlation id (empty when the client sent none).
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Self::Solve(r) => &r.id,
            Self::SolveBatch(r) => &r.id,
            Self::Ping { id }
            | Self::Stats { id }
            | Self::Metrics { id }
            | Self::Shutdown { id }
            | Self::Hello { id, .. } => id,
        }
    }

    /// Serializes to one canonical request line (no trailing newline) that
    /// [`parse_request`] maps back to this exact value. Every in-repo
    /// client (the CLI, loadgen, the benches) composes request lines
    /// through this, so the wire has one writer for each direction.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Self::Solve(r) => request_to_json(r),
            Self::SolveBatch(r) => batch_request_to_json(r),
            Self::Ping { id } => simple_op_to_json(id, "ping"),
            Self::Stats { id } => simple_op_to_json(id, "stats"),
            Self::Metrics { id } => simple_op_to_json(id, "metrics"),
            Self::Shutdown { id } => simple_op_to_json(id, "shutdown"),
            Self::Hello { id, max_version } => {
                let mut out = format!("{{\"id\":{},\"op\":\"hello\"", json_string(id));
                if let Some(v) = max_version {
                    out.push_str(&format!(",\"max_version\":{v}"));
                }
                out.push('}');
                out
            }
        }
    }
}

fn simple_op_to_json(id: &str, op: &str) -> String {
    format!("{{\"id\":{},\"op\":\"{op}\"}}", json_string(id))
}

/// A solve request: which solver, on what platform, with what options.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Which solver to run.
    pub kind: SolverKind,
    /// The platform description (the spec-file `"platform"` object).
    pub platform: Value,
    /// Solver options (wire-absent members take the defaults).
    pub options: SolveOptions,
    /// Whether the response should carry the schedule in
    /// `mosc-sched::text` form.
    pub want_schedule: bool,
    /// Distributed trace context (protocol v2); v1 clients leave it out
    /// and the wire form is byte-identical to v1.
    pub trace: Option<TraceContext>,
}

/// A `solve_batch` request: one platform, many solver/option variants.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Client-chosen correlation id; variant `i`'s result answers as
    /// `"<id>#<i>"`.
    pub id: String,
    /// The shared platform description.
    pub platform: Value,
    /// The variants, in request (and response) order.
    pub variants: Vec<BatchVariantRequest>,
    /// Distributed trace context (protocol v2), shared by every variant of
    /// the dispatch; v1 clients leave it out.
    pub trace: Option<TraceContext>,
}

/// One variant of a [`BatchRequest`]: everything of a solve request except
/// the platform, which the batch shares.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchVariantRequest {
    /// Which solver to run.
    pub kind: SolverKind,
    /// Solver options (wire-absent members take the defaults).
    pub options: SolveOptions,
    /// Whether this variant's result should carry the schedule text.
    pub want_schedule: bool,
}

/// The most variants one `solve_batch` line may carry: bounds worst-case
/// work a single dispatch can pin on the worker pool.
pub const MAX_BATCH_VARIANTS: usize = 256;

fn proto_err(id: &str, message: impl Into<String>) -> ProtoError {
    ProtoError { message: message.into(), id: id.to_owned(), kind: ErrorKind::Parse }
}

/// Parses one request line.
///
/// # Errors
/// [`ProtoError`] for malformed JSON, a non-object line, an unknown op or
/// solver, or a mistyped member. The error carries whatever `id` could be
/// recovered, so the caller can still address its error response.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = Value::parse(line).map_err(|e| proto_err("", format!("invalid JSON: {e}")))?;
    if !doc.is_object() {
        return Err(proto_err("", "request must be a JSON object"));
    }
    let id = match doc.get("id") {
        None => String::new(),
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err(proto_err("", "'id' must be a string")),
    };
    let op = match doc.get("op") {
        None => "solve",
        Some(Value::String(s)) => s.as_str(),
        Some(_) => return Err(proto_err(&id, "'op' must be a string")),
    };
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "hello" => {
            let max_version = match doc.get("max_version") {
                None => None,
                Some(v) => {
                    Some(v.as_usize().and_then(|n| u32::try_from(n).ok()).ok_or_else(|| {
                        proto_err(&id, "'max_version' must be a non-negative integer")
                    })?)
                }
            };
            Ok(Request::Hello { id, max_version })
        }
        "solve" => parse_solve(&doc, id).map(Request::Solve),
        "solve_batch" => parse_solve_batch(&doc, id).map(Request::SolveBatch),
        other => Err(ProtoError {
            message: format!("unknown op '{other}' (supported: {})", OPS.join(", ")),
            id,
            kind: ErrorKind::Unsupported,
        }),
    }
}

fn parse_solve(doc: &Value, id: String) -> Result<SolveRequest, ProtoError> {
    let solver = match doc.get("solver") {
        None => return Err(proto_err(&id, "solve request needs a 'solver' member")),
        Some(Value::String(s)) => {
            s.parse::<SolverKind>().map_err(|e| proto_err(&id, e.to_string()))?
        }
        Some(_) => return Err(proto_err(&id, "'solver' must be a string")),
    };
    let platform = match doc.get("platform") {
        Some(p @ Value::Object(_)) => p.clone(),
        Some(_) => return Err(proto_err(&id, "'platform' must be an object")),
        None => return Err(proto_err(&id, "solve request needs a 'platform' object")),
    };
    let options = match doc.get("options") {
        None => SolveOptions::default(),
        Some(o @ Value::Object(_)) => parse_options(o, &id)?,
        Some(_) => return Err(proto_err(&id, "'options' must be an object")),
    };
    let want_schedule = match doc.get("want_schedule") {
        None => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err(proto_err(&id, "'want_schedule' must be a boolean")),
    };
    let trace = parse_trace(doc, &id)?;
    Ok(SolveRequest { id, kind: solver, platform, options, want_schedule, trace })
}

/// Parses the optional v2 `trace` member of a solve/`solve_batch` line.
fn parse_trace(doc: &Value, id: &str) -> Result<Option<TraceContext>, ProtoError> {
    match doc.get("trace") {
        None => Ok(None),
        Some(Value::String(s)) => TraceContext::parse_wire(s).map(Some).ok_or_else(|| {
            proto_err(id, "'trace' must be '<32 hex trace id>-<16 hex parent span id>'")
        }),
        Some(_) => Err(proto_err(id, "'trace' must be a string")),
    }
}

fn parse_solve_batch(doc: &Value, id: String) -> Result<BatchRequest, ProtoError> {
    let platform = match doc.get("platform") {
        Some(p @ Value::Object(_)) => p.clone(),
        Some(_) => return Err(proto_err(&id, "'platform' must be an object")),
        None => return Err(proto_err(&id, "solve_batch request needs a 'platform' object")),
    };
    let raw = match doc.get("variants") {
        Some(Value::Array(items)) => items,
        Some(_) => return Err(proto_err(&id, "'variants' must be an array")),
        None => return Err(proto_err(&id, "solve_batch request needs a 'variants' array")),
    };
    if raw.is_empty() {
        return Err(proto_err(&id, "'variants' must not be empty"));
    }
    if raw.len() > MAX_BATCH_VARIANTS {
        return Err(proto_err(
            &id,
            format!("'variants' is capped at {MAX_BATCH_VARIANTS} entries, got {}", raw.len()),
        ));
    }
    let mut variants = Vec::with_capacity(raw.len());
    for (i, v) in raw.iter().enumerate() {
        if !v.is_object() {
            return Err(proto_err(&id, format!("variants[{i}] must be an object")));
        }
        let kind = match v.get("solver") {
            None => return Err(proto_err(&id, format!("variants[{i}] needs a 'solver' member"))),
            Some(Value::String(s)) => s
                .parse::<SolverKind>()
                .map_err(|e| proto_err(&id, format!("variants[{i}]: {e}")))?,
            Some(_) => {
                return Err(proto_err(&id, format!("variants[{i}].solver must be a string")))
            }
        };
        let options = match v.get("options") {
            None => SolveOptions::default(),
            Some(o @ Value::Object(_)) => parse_options(o, &id)?,
            Some(_) => {
                return Err(proto_err(&id, format!("variants[{i}].options must be an object")))
            }
        };
        let want_schedule = match v.get("want_schedule") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => {
                return Err(proto_err(
                    &id,
                    format!("variants[{i}].want_schedule must be a boolean"),
                ))
            }
        };
        variants.push(BatchVariantRequest { kind, options, want_schedule });
    }
    let trace = parse_trace(doc, &id)?;
    Ok(BatchRequest { id, platform, variants, trace })
}

fn parse_options(o: &Value, id: &str) -> Result<SolveOptions, ProtoError> {
    let mut opts = SolveOptions::default();
    let usize_field = |name: &str, into: &mut usize| -> Result<(), ProtoError> {
        if let Some(v) = o.get(name) {
            *into = v.as_usize().ok_or_else(|| {
                proto_err(id, format!("options.{name} must be a non-negative integer"))
            })?;
        }
        Ok(())
    };
    usize_field("threads", &mut opts.threads)?;
    usize_field("max_m", &mut opts.max_m)?;
    usize_field("m_patience", &mut opts.m_patience)?;
    usize_field("t_unit_divisor", &mut opts.t_unit_divisor)?;
    usize_field("phase_steps", &mut opts.phase_steps)?;
    usize_field("samples", &mut opts.samples)?;
    usize_field("refill_divisor", &mut opts.refill_divisor)?;
    if let Some(v) = o.get("deadline_ms") {
        let ms = v
            .as_f64()
            .filter(|ms| ms.is_finite() && *ms >= 0.0)
            .ok_or_else(|| proto_err(id, "options.deadline_ms must be a non-negative number"))?;
        opts.deadline = Some(Duration::from_secs_f64(ms / 1e3));
    }
    let f64_field = |name: &str, into: &mut f64| -> Result<(), ProtoError> {
        if let Some(v) = o.get(name) {
            *into = v
                .as_f64()
                .ok_or_else(|| proto_err(id, format!("options.{name} must be a number")))?;
        }
        Ok(())
    };
    f64_field("base_period", &mut opts.base_period)?;
    f64_field("governor_control_period", &mut opts.governor.control_period)?;
    f64_field("governor_guard_band", &mut opts.governor.guard_band)?;
    f64_field("governor_upgrade_band", &mut opts.governor.upgrade_band)?;
    f64_field("governor_horizon", &mut opts.governor.horizon)?;
    f64_field("governor_warmup", &mut opts.governor.warmup)?;
    Ok(opts)
}

/// A successful solve response.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// The request's correlation id.
    pub id: String,
    /// Which solver produced the result.
    pub solver: SolverKind,
    /// Chip-wide throughput per eq. (5).
    pub throughput: f64,
    /// Stable-status peak temperature in °C.
    pub peak_c: f64,
    /// Whether the peak respects `T_max`.
    pub feasible: bool,
    /// Oscillation factor used.
    pub m: usize,
    /// Solver wall time in milliseconds (the original solve's time when the
    /// response came from the cache).
    pub wall_ms: f64,
    /// Whether the response was served from the solution cache.
    pub cached: bool,
    /// Cross-solver search statistics.
    pub stats: SolverStats,
    /// The schedule in `mosc-sched::text` form, when the request asked.
    pub schedule: Option<String>,
}

impl SolveResponse {
    /// Serializes to one canonical response line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\":");
        out.push_str(&json_string(&self.id));
        out.push_str(",\"status\":\"ok\",\"solver\":");
        out.push_str(&json_string(self.solver.id()));
        out.push_str(&format!(
            ",\"throughput\":{:?},\"peak_c\":{:?},\"feasible\":{},\"m\":{},\"wall_ms\":{:?},\"cached\":{}",
            self.throughput, self.peak_c, self.feasible, self.m, self.wall_ms, self.cached
        ));
        out.push_str(&format!(
            ",\"stats\":{{\"explored\":{},\"thermal_prunes\":{},\"throughput_prunes\":{},\"transitions\":{},\"violation_time\":{:?}}}",
            self.stats.explored,
            self.stats.thermal_prunes,
            self.stats.throughput_prunes,
            self.stats.transitions,
            self.stats.violation_time
        ));
        if let Some(schedule) = &self.schedule {
            out.push_str(",\"schedule\":");
            out.push_str(&json_string(schedule));
        }
        out.push('}');
        out
    }

    /// Parses a response line produced by [`Self::to_json`].
    ///
    /// # Errors
    /// [`ProtoError`] when the line is not an ok-status response or a member
    /// is missing/mistyped.
    pub fn from_value(doc: &Value) -> Result<Self, ProtoError> {
        let id = match doc.get("id") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(proto_err("", "response 'id' must be a string")),
        };
        if doc.get("status").and_then(Value::as_str) != Some("ok") {
            return Err(proto_err(&id, "not an ok-status response"));
        }
        let solver = doc
            .get("solver")
            .and_then(Value::as_str)
            .ok_or_else(|| proto_err(&id, "response 'solver' must be a string"))?
            .parse::<SolverKind>()
            .map_err(|e| proto_err(&id, e.to_string()))?;
        let num = |name: &str| -> Result<f64, ProtoError> {
            doc.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| proto_err(&id, format!("response '{name}' must be a number")))
        };
        let stats_doc =
            doc.get("stats").ok_or_else(|| proto_err(&id, "response is missing 'stats'"))?;
        let stat = |name: &str| -> Result<u64, ProtoError> {
            stats_doc
                .get(name)
                .and_then(Value::as_f64)
                .filter(|v| *v >= 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| proto_err(&id, format!("stats.{name} must be a count")))
        };
        let stats = SolverStats {
            explored: stat("explored")?,
            thermal_prunes: stat("thermal_prunes")?,
            throughput_prunes: stat("throughput_prunes")?,
            transitions: stat("transitions")?,
            violation_time: stats_doc
                .get("violation_time")
                .and_then(Value::as_f64)
                .ok_or_else(|| proto_err(&id, "stats.violation_time must be a number"))?,
        };
        let schedule = match doc.get("schedule") {
            None => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err(proto_err(&id, "response 'schedule' must be a string")),
        };
        Ok(Self {
            solver,
            throughput: num("throughput")?,
            peak_c: num("peak_c")?,
            feasible: doc
                .get("feasible")
                .and_then(Value::as_bool)
                .ok_or_else(|| proto_err(&id, "response 'feasible' must be a boolean"))?,
            m: doc
                .get("m")
                .and_then(Value::as_usize)
                .ok_or_else(|| proto_err(&id, "response 'm' must be an integer"))?,
            wall_ms: num("wall_ms")?,
            cached: doc
                .get("cached")
                .and_then(Value::as_bool)
                .ok_or_else(|| proto_err(&id, "response 'cached' must be a boolean"))?,
            stats,
            schedule,
            id,
        })
    }
}

/// A point-in-time snapshot of the service counters plus the latency
/// summary (milliseconds) of the merged per-op solve histograms — the
/// payload of a `stats` response.
///
/// The latency quantiles come from the `mosc-obs` latency histograms,
/// which record only while the global recorder is enabled; a server run
/// without `--obs` reports them as `0`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field names mirror the serve.* metrics one-to-one
pub struct ServeStats {
    pub requests: u64,
    pub responses: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rejected: u64,
    pub deadline_exceeded: u64,
    pub malformed: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub cache_len: u64,
    pub uptime_s: f64,
    pub req_per_s: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
    /// Trace id of the slowest recently exemplified solve (the exemplar of
    /// the highest non-empty latency bucket); `0` when no traced solve has
    /// been recorded. Travels as a 32-hex-digit string and is omitted from
    /// the wire entirely while zero, so stats lines from untraced runs stay
    /// byte-identical to v1.
    pub slow_exemplar: u128,
}

impl ServeStats {
    /// Renders the `stats` response payload (one line, no newline) through
    /// the shared protocol serializer.
    #[must_use]
    pub fn to_json(&self, id: &str) -> String {
        let n = |v: u64| Value::Number(v as f64);
        let mut stats = Value::Object(vec![
            ("requests".to_owned(), n(self.requests)),
            ("responses".to_owned(), n(self.responses)),
            ("cache_hits".to_owned(), n(self.cache_hits)),
            ("cache_misses".to_owned(), n(self.cache_misses)),
            ("cache_evictions".to_owned(), n(self.cache_evictions)),
            ("rejected".to_owned(), n(self.rejected)),
            ("deadline_exceeded".to_owned(), n(self.deadline_exceeded)),
            ("malformed".to_owned(), n(self.malformed)),
            ("queue_depth".to_owned(), n(self.queue_depth)),
            ("queue_peak".to_owned(), n(self.queue_peak)),
            ("cache_len".to_owned(), n(self.cache_len)),
            ("uptime_s".to_owned(), Value::Number(self.uptime_s)),
            ("req_per_s".to_owned(), Value::Number(self.req_per_s)),
            ("p50_ms".to_owned(), Value::Number(self.p50_ms)),
            ("p90_ms".to_owned(), Value::Number(self.p90_ms)),
            ("p99_ms".to_owned(), Value::Number(self.p99_ms)),
            ("p999_ms".to_owned(), Value::Number(self.p999_ms)),
            ("max_ms".to_owned(), Value::Number(self.max_ms)),
        ]);
        if self.slow_exemplar != 0 {
            if let Value::Object(members) = &mut stats {
                members.push((
                    "slow_exemplar".to_owned(),
                    Value::String(format!("{:032x}", self.slow_exemplar)),
                ));
            }
        }
        let doc = Value::Object(vec![
            ("id".to_owned(), Value::String(id.to_owned())),
            ("status".to_owned(), Value::String("ok".to_owned())),
            ("stats".to_owned(), stats),
        ]);
        value_to_json(&doc)
    }

    /// Parses the `stats` member of a stats response line.
    ///
    /// # Errors
    /// [`ProtoError`] when a member is missing or mistyped.
    pub fn from_value(doc: &Value) -> Result<Self, ProtoError> {
        let count = |name: &str| -> Result<u64, ProtoError> {
            doc.get(name)
                .and_then(Value::as_f64)
                .filter(|v| *v >= 0.0)
                .map(|v| v as u64)
                .ok_or_else(|| proto_err("", format!("stats.{name} must be a count")))
        };
        let num = |name: &str| -> Result<f64, ProtoError> {
            doc.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| proto_err("", format!("stats.{name} must be a number")))
        };
        Ok(Self {
            requests: count("requests")?,
            responses: count("responses")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            cache_evictions: count("cache_evictions")?,
            rejected: count("rejected")?,
            deadline_exceeded: count("deadline_exceeded")?,
            malformed: count("malformed")?,
            queue_depth: count("queue_depth")?,
            queue_peak: count("queue_peak")?,
            cache_len: count("cache_len")?,
            uptime_s: num("uptime_s")?,
            req_per_s: num("req_per_s")?,
            p50_ms: num("p50_ms")?,
            p90_ms: num("p90_ms")?,
            p99_ms: num("p99_ms")?,
            p999_ms: num("p999_ms")?,
            max_ms: num("max_ms")?,
            slow_exemplar: match doc.get("slow_exemplar") {
                None => 0,
                Some(Value::String(s)) => u128::from_str_radix(s, 16)
                    .map_err(|_| proto_err("", "stats.slow_exemplar must be a hex trace id"))?,
                Some(_) => return Err(proto_err("", "stats.slow_exemplar must be a hex trace id")),
            },
        })
    }
}

/// A `solve_batch` response: per-variant results in request order, plus
/// whether the shared platform came from the interning registry.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    /// The batch request's correlation id.
    pub id: String,
    /// Whether the platform was interned (`"registry":"warm"` on the wire)
    /// or had to be built (`"cold"`).
    pub registry_warm: bool,
    /// Per-variant results: each an [`Response::Ok`] or [`Response::Error`]
    /// with id `"<batch id>#<index>"`.
    pub results: Vec<Response>,
}

/// A `hello` response: the negotiated session version plus what else the
/// daemon could speak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloResponse {
    /// The request's correlation id.
    pub id: String,
    /// The server implementation name (`"mosc-serve"`).
    pub server: String,
    /// The negotiated session version (see [`negotiate_version`]).
    pub version: u32,
    /// Every protocol version this daemon can speak, ascending.
    pub versions: Vec<u32>,
    /// Every op name this daemon understands, sorted.
    pub ops: Vec<String>,
}

impl HelloResponse {
    /// The handshake answer this build gives for a client's `max_version`.
    ///
    /// # Errors
    /// A human-readable message when no common version exists (the caller
    /// wraps it in an [`ErrorKind::Usage`] error response).
    pub fn negotiate(id: &str, client_max: Option<u32>) -> Result<Self, String> {
        Ok(Self {
            id: id.to_owned(),
            server: "mosc-serve".to_owned(),
            version: negotiate_version(client_max)?,
            versions: (PROTO_VERSION_MIN..=PROTO_VERSION_MAX).collect(),
            ops: OPS.iter().map(|&s| s.to_owned()).collect(),
        })
    }
}

/// One parsed (or to-be-serialized) response line: the typed mirror of
/// every line the daemon writes. [`Response::to_json`] and
/// [`Response::parse`] are the single serialize/parse pair for the
/// response direction; the property tests pin the round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful solve.
    Ok(SolveResponse),
    /// A `solve_batch` answer: one line, per-variant results inside.
    Batch(BatchResponse),
    /// The request failed; `kind` classifies how.
    Error {
        /// The request's correlation id (empty when none was recovered).
        id: String,
        /// What went wrong.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The bounded queue was full: immediate load-shed, try again later.
    Overloaded {
        /// The request's correlation id.
        id: String,
    },
    /// Liveness answer.
    Pong {
        /// The request's correlation id.
        id: String,
    },
    /// Service counters and latency summary.
    Stats {
        /// The request's correlation id.
        id: String,
        /// The counter snapshot.
        stats: ServeStats,
    },
    /// Prometheus text exposition, JSON-escaped into one member.
    Metrics {
        /// The request's correlation id.
        id: String,
        /// The full scrape body.
        text: String,
    },
    /// Acknowledges a `shutdown` op; the daemon drains and exits after.
    ShuttingDown {
        /// The request's correlation id.
        id: String,
    },
    /// The version-handshake answer.
    Hello(HelloResponse),
}

impl Response {
    /// The correlation id this response answers.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Self::Ok(r) => &r.id,
            Self::Batch(r) => &r.id,
            Self::Hello(r) => &r.id,
            Self::Error { id, .. }
            | Self::Overloaded { id }
            | Self::Pong { id }
            | Self::Stats { id, .. }
            | Self::Metrics { id, .. }
            | Self::ShuttingDown { id } => id,
        }
    }

    /// Serializes to one canonical response line (no trailing newline),
    /// byte-identical to what the daemon writes on the wire.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Self::Ok(r) => r.to_json(),
            Self::Batch(b) => {
                let results: Vec<String> = b.results.iter().map(Self::to_json).collect();
                batch_response_to_json(&b.id, b.registry_warm, &results)
            }
            Self::Error { id, kind, message } => error_to_json(id, kind.id(), message),
            Self::Overloaded { id } => overloaded_to_json(id),
            Self::Pong { id } => {
                format!("{{\"id\":{},\"status\":\"ok\",\"pong\":true}}", json_string(id))
            }
            Self::Stats { id, stats } => stats.to_json(id),
            Self::Metrics { id, text } => format!(
                "{{\"id\":{},\"status\":\"ok\",\"metrics\":{}}}",
                json_string(id),
                json_string(text)
            ),
            Self::ShuttingDown { id } => {
                format!("{{\"id\":{},\"status\":\"ok\",\"shutting_down\":true}}", json_string(id))
            }
            Self::Hello(h) => {
                let mut out = format!(
                    "{{\"id\":{},\"status\":\"ok\",\"server\":{},\"version\":{}",
                    json_string(&h.id),
                    json_string(&h.server),
                    h.version
                );
                out.push_str(",\"versions\":[");
                for (i, v) in h.versions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&v.to_string());
                }
                out.push_str("],\"ops\":[");
                for (i, op) in h.ops.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(op));
                }
                out.push_str("]}");
                out
            }
        }
    }

    /// Parses one response line produced by [`Self::to_json`].
    ///
    /// # Errors
    /// [`ProtoError`] for malformed JSON or a line that matches no known
    /// response shape.
    pub fn parse(line: &str) -> Result<Self, ProtoError> {
        let doc = Value::parse(line).map_err(|e| proto_err("", format!("invalid JSON: {e}")))?;
        Self::from_value(&doc)
    }

    /// Classifies and parses an already-parsed response document.
    ///
    /// # Errors
    /// [`ProtoError`] when the document matches no known response shape.
    pub fn from_value(doc: &Value) -> Result<Self, ProtoError> {
        if !doc.is_object() {
            return Err(proto_err("", "response must be a JSON object"));
        }
        let id = match doc.get("id") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(proto_err("", "response 'id' must be a string")),
        };
        match doc.get("status").and_then(Value::as_str) {
            Some("overloaded") => Ok(Self::Overloaded { id }),
            Some("error") => {
                let kind = doc
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| proto_err(&id, "error response 'kind' must be a string"))?
                    .parse::<ErrorKind>()
                    .map_err(|e| proto_err(&id, e))?;
                let message = doc
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or_else(|| proto_err(&id, "error response 'message' must be a string"))?
                    .to_owned();
                Ok(Self::Error { id, kind, message })
            }
            Some("ok") => {
                if doc.get("pong").is_some() {
                    return Ok(Self::Pong { id });
                }
                if doc.get("shutting_down").is_some() {
                    return Ok(Self::ShuttingDown { id });
                }
                // Solve responses carry their own `stats` member (the
                // solver counters), so the `solver` marker must be
                // checked before the stats-response shape.
                if doc.get("solver").is_some() {
                    return SolveResponse::from_value(doc).map(Self::Ok);
                }
                if let Some(stats) = doc.get("stats") {
                    return Ok(Self::Stats { id, stats: ServeStats::from_value(stats)? });
                }
                if let Some(text) = doc.get("metrics") {
                    let Value::String(text) = text else {
                        return Err(proto_err(&id, "response 'metrics' must be a string"));
                    };
                    return Ok(Self::Metrics { id, text: text.clone() });
                }
                if doc.get("server").is_some() {
                    return Ok(Self::Hello(parse_hello(doc, id)?));
                }
                if doc.get("registry").is_some() {
                    return Ok(Self::Batch(parse_batch_response(doc, id)?));
                }
                SolveResponse::from_value(doc).map(Self::Ok)
            }
            Some(other) => Err(proto_err(&id, format!("unknown response status '{other}'"))),
            None => Err(proto_err(&id, "response 'status' must be a string")),
        }
    }
}

fn parse_hello(doc: &Value, id: String) -> Result<HelloResponse, ProtoError> {
    let server = doc
        .get("server")
        .and_then(Value::as_str)
        .ok_or_else(|| proto_err(&id, "hello response 'server' must be a string"))?
        .to_owned();
    let version = doc
        .get("version")
        .and_then(Value::as_usize)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| proto_err(&id, "hello response 'version' must be an integer"))?;
    let versions = match doc.get("versions") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| v.as_usize().and_then(|n| u32::try_from(n).ok()))
            .collect::<Option<Vec<u32>>>()
            .ok_or_else(|| proto_err(&id, "hello response 'versions' must hold integers"))?,
        _ => return Err(proto_err(&id, "hello response 'versions' must be an array")),
    };
    let ops = match doc.get("ops") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect::<Option<Vec<String>>>()
            .ok_or_else(|| proto_err(&id, "hello response 'ops' must hold strings"))?,
        _ => return Err(proto_err(&id, "hello response 'ops' must be an array")),
    };
    Ok(HelloResponse { id, server, version, versions, ops })
}

fn parse_batch_response(doc: &Value, id: String) -> Result<BatchResponse, ProtoError> {
    let registry_warm = match doc.get("registry").and_then(Value::as_str) {
        Some("warm") => true,
        Some("cold") => false,
        _ => return Err(proto_err(&id, "batch response 'registry' must be 'warm' or 'cold'")),
    };
    let Some(Value::Array(raw)) = doc.get("results") else {
        return Err(proto_err(&id, "batch response 'results' must be an array"));
    };
    let mut results = Vec::with_capacity(raw.len());
    for item in raw {
        let r = Response::from_value(item)?;
        if !matches!(r, Response::Ok(_) | Response::Error { .. }) {
            return Err(proto_err(&id, "batch results must be solve ok/error objects"));
        }
        results.push(r);
    }
    Ok(BatchResponse { id, registry_warm, results })
}

/// Serializes a solve request to one canonical line (no trailing newline).
/// Clients — the CLI `client` subcommand, the serve bench — compose request
/// lines through this, so both directions of the wire share one writer.
#[must_use]
pub fn request_to_json(req: &SolveRequest) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"id\":");
    out.push_str(&json_string(&req.id));
    out.push_str(",\"op\":\"solve\",\"solver\":");
    out.push_str(&json_string(req.kind.id()));
    out.push_str(",\"platform\":");
    out.push_str(&canonical_json(&req.platform));
    out.push_str(",\"options\":");
    out.push_str(&options_to_json(&req.options));
    out.push_str(&format!(",\"want_schedule\":{}", req.want_schedule));
    if let Some(trace) = &req.trace {
        out.push_str(&format!(",\"trace\":\"{}\"", trace.to_wire()));
    }
    out.push('}');
    out
}

/// Serializes a `solve_batch` request to one canonical line (no trailing
/// newline).
#[must_use]
pub fn batch_request_to_json(req: &BatchRequest) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"id\":");
    out.push_str(&json_string(&req.id));
    out.push_str(",\"op\":\"solve_batch\",\"platform\":");
    out.push_str(&canonical_json(&req.platform));
    out.push_str(",\"variants\":[");
    for (i, v) in req.variants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"solver\":");
        out.push_str(&json_string(v.kind.id()));
        out.push_str(",\"options\":");
        out.push_str(&options_to_json(&v.options));
        out.push_str(&format!(",\"want_schedule\":{}}}", v.want_schedule));
    }
    out.push(']');
    if let Some(trace) = &req.trace {
        out.push_str(&format!(",\"trace\":\"{}\"", trace.to_wire()));
    }
    out.push('}');
    out
}

/// One `solve_batch` response line: the per-variant result objects (each
/// already rendered as a single-solve `ok`/`error` object) in request
/// order, plus whether the platform was interned (`"warm"`) or built
/// (`"cold"`).
#[must_use]
pub fn batch_response_to_json(id: &str, registry_warm: bool, results: &[String]) -> String {
    let mut out = String::with_capacity(64 + results.iter().map(String::len).sum::<usize>());
    out.push_str("{\"id\":");
    out.push_str(&json_string(id));
    out.push_str(",\"status\":\"ok\",\"registry\":");
    out.push_str(if registry_warm { "\"warm\"" } else { "\"cold\"" });
    out.push_str(",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    out.push_str("]}");
    out
}

/// Serializes options with every member present, in canonical order.
#[must_use]
pub fn options_to_json(o: &SolveOptions) -> String {
    let mut out = format!(
        "{{\"threads\":{},\"max_m\":{},\"base_period\":{:?},\"m_patience\":{},\"t_unit_divisor\":{},\"phase_steps\":{},\"samples\":{},\"refill_divisor\":{}",
        o.threads,
        o.max_m,
        o.base_period,
        o.m_patience,
        o.t_unit_divisor,
        o.phase_steps,
        o.samples,
        o.refill_divisor
    );
    if let Some(d) = o.deadline {
        out.push_str(&format!(",\"deadline_ms\":{:?}", d.as_secs_f64() * 1e3));
    }
    out.push_str(&format!(
        ",\"governor_control_period\":{:?},\"governor_guard_band\":{:?},\"governor_upgrade_band\":{:?},\"governor_horizon\":{:?},\"governor_warmup\":{:?}}}",
        o.governor.control_period,
        o.governor.guard_band,
        o.governor.upgrade_band,
        o.governor.horizon,
        o.governor.warmup
    ));
    out
}

/// One error response line (no trailing newline). `kind` classifies the
/// failure: `"parse"`, `"usage"`, `"infeasible"`, `"deadline"`,
/// `"internal"`.
#[must_use]
pub fn error_to_json(id: &str, kind: &str, message: &str) -> String {
    format!(
        "{{\"id\":{},\"status\":\"error\",\"kind\":{},\"message\":{}}}",
        json_string(id),
        json_string(kind),
        json_string(message)
    )
}

/// One overloaded (backpressure) response line.
#[must_use]
pub fn overloaded_to_json(id: &str) -> String {
    format!("{{\"id\":{},\"status\":\"overloaded\",\"message\":\"queue full\"}}", json_string(id))
}

// The serializers this protocol writes with — order-preserving
// `value_to_json`, key-sorted `canonical_json` (the cache-key preimage) and
// `json_string` quoting — live in `mosc_analyze::json` next to the parser,
// so the workspace has exactly one JSON read+write module. Re-exported here
// because they are part of this module's public wire-format API.
pub use mosc_analyze::json::{canonical_json, json_string, value_to_json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire() {
        let platform =
            Value::parse(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#).unwrap();
        let req = SolveRequest {
            id: "r-1".into(),
            kind: SolverKind::Ao,
            platform,
            options: SolveOptions {
                threads: 2,
                deadline: Some(Duration::from_millis(1500)),
                ..SolveOptions::default()
            },
            want_schedule: true,
            trace: None,
        };
        let line = request_to_json(&req);
        let parsed = match parse_request(&line).unwrap() {
            Request::Solve(r) => r,
            other => panic!("expected solve, got {other:?}"),
        };
        assert_eq!(parsed.id, req.id);
        assert_eq!(parsed.kind, req.kind);
        assert_eq!(parsed.options, req.options);
        assert_eq!(parsed.want_schedule, req.want_schedule);
        // The wire form canonicalizes the platform (sorted keys), so
        // compare canonical serializations rather than member order.
        assert_eq!(canonical_json(&parsed.platform), canonical_json(&req.platform));
    }

    #[test]
    fn batch_request_round_trips_through_the_wire() {
        let platform =
            Value::parse(r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#).unwrap();
        let req = BatchRequest {
            id: "b-1".into(),
            platform,
            variants: vec![
                BatchVariantRequest {
                    kind: SolverKind::Ao,
                    options: SolveOptions::default(),
                    want_schedule: false,
                },
                BatchVariantRequest {
                    kind: SolverKind::Pco,
                    options: SolveOptions { max_m: 8, ..SolveOptions::default() },
                    want_schedule: true,
                },
            ],
            trace: Some(TraceContext { trace_id: 0xfeed_beef, parent_id: 7 }),
        };
        let line = batch_request_to_json(&req);
        let parsed = match parse_request(&line).unwrap() {
            Request::SolveBatch(r) => r,
            other => panic!("expected solve_batch, got {other:?}"),
        };
        assert_eq!(parsed.id, req.id);
        assert_eq!(parsed.variants, req.variants);
        assert_eq!(parsed.trace, req.trace);
        assert_eq!(canonical_json(&parsed.platform), canonical_json(&req.platform));
    }

    #[test]
    fn trace_contexts_round_trip_and_malformed_ones_are_rejected() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            parent_id: 0xdead_beef,
        };
        assert_eq!(TraceContext::parse_wire(&ctx.to_wire()), Some(ctx));
        let root = TraceContext::root();
        assert_ne!(root.trace_id, 0);
        assert_ne!(root.parent_id, 0);
        assert_ne!(TraceContext::root().trace_id, root.trace_id, "trace ids must be unique");
        for bad in [
            "",
            "abc",
            "0123456789abcdef0123456789abcdef", // no parent
            "0123456789abcdef0123456789abcdef-00000000000000", // parent too short
            "0123456789ABCDEF0123456789abcdef-0000000000000001", // upper-case hex
            "00000000000000000000000000000000-0000000000000001", // zero trace id
            "0123456789abcdef0123456789abcdeg-0000000000000001", // non-hex
        ] {
            assert_eq!(TraceContext::parse_wire(bad), None, "{bad:?} must be rejected");
        }
        // On the wire: a malformed trace member is a parse error that still
        // recovers the id; an absent one parses as None.
        let base = r#""op":"solve","solver":"ao","platform":{"rows":1,"cols":1,"levels":[0.6,1.3],"t_max_c":55.0}"#;
        let err = parse_request(&format!(r#"{{"id":"t","trace":"nope",{base}}}"#)).unwrap_err();
        assert_eq!(err.id, "t");
        assert!(err.message.contains("trace"));
        match parse_request(&format!(r#"{{"id":"t",{base}}}"#)).unwrap() {
            Request::Solve(r) => assert_eq!(r.trace, None),
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn batch_requests_are_validated() {
        let base = r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#;
        // Missing variants.
        let err = parse_request(&format!(r#"{{"id":"b","op":"solve_batch","platform":{base}}}"#))
            .unwrap_err();
        assert_eq!(err.id, "b");
        assert!(err.message.contains("variants"));
        // Empty variants.
        let err = parse_request(&format!(
            r#"{{"id":"b","op":"solve_batch","platform":{base},"variants":[]}}"#
        ))
        .unwrap_err();
        assert!(err.message.contains("empty"));
        // Variant without a solver.
        let err = parse_request(&format!(
            r#"{{"id":"b","op":"solve_batch","platform":{base},"variants":[{{}}]}}"#
        ))
        .unwrap_err();
        assert!(err.message.contains("variants[0]"));
        // Too many variants.
        let many: Vec<String> =
            (0..=MAX_BATCH_VARIANTS).map(|_| r#"{"solver":"ao"}"#.to_owned()).collect();
        let err = parse_request(&format!(
            r#"{{"id":"b","op":"solve_batch","platform":{base},"variants":[{}]}}"#,
            many.join(",")
        ))
        .unwrap_err();
        assert!(err.message.contains("capped"));
    }

    #[test]
    fn batch_response_lines_parse_as_json() {
        let results = vec![
            r#"{"id":"b#0","status":"ok"}"#.to_owned(),
            error_to_json("b#1", "infeasible", "too hot"),
        ];
        let line = batch_response_to_json("b", true, &results);
        let doc = Value::parse(&line).unwrap();
        assert_eq!(doc.get("registry").and_then(Value::as_str), Some("warm"));
        match doc.get("results") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].get("id").and_then(Value::as_str), Some("b#0"));
                assert_eq!(items[1].get("kind").and_then(Value::as_str), Some("infeasible"));
            }
            other => panic!("results must be an array, got {other:?}"),
        }
        let cold = batch_response_to_json("b", false, &[]);
        let doc = Value::parse(&cold).unwrap();
        assert_eq!(doc.get("registry").and_then(Value::as_str), Some("cold"));
    }

    #[test]
    fn ops_parse_and_ids_are_recovered() {
        assert_eq!(
            parse_request(r#"{"id":"a","op":"ping"}"#).unwrap(),
            Request::Ping { id: "a".into() }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: String::new() }
        );
        assert_eq!(
            parse_request(r#"{"id":"m","op":"metrics"}"#).unwrap(),
            Request::Metrics { id: "m".into() }
        );
        assert_eq!(
            parse_request(r#"{"id":"z","op":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: "z".into() }
        );
        // The id survives into the error for bad members after it.
        let err = parse_request(r#"{"id":"q","op":"warp"}"#).unwrap_err();
        assert_eq!(err.id, "q");
        assert!(err.message.contains("warp"));
        // Structurally broken lines cannot recover an id.
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_level() {
        let a = Value::parse(r#"{"b":{"y":1,"x":2},"a":[1,2]}"#).unwrap();
        let b = Value::parse(r#"{"a":[1,2],"b":{"x":2,"y":1}}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_json(&a), r#"{"a":[1.0,2.0],"b":{"x":2.0,"y":1.0}}"#);
    }

    #[test]
    fn value_to_json_preserves_member_order() {
        let doc = Value::Object(vec![
            ("z".to_owned(), Value::Number(1.0)),
            ("a".to_owned(), Value::String("x\"y".to_owned())),
            ("nested".to_owned(), Value::Object(vec![("b".to_owned(), Value::Bool(true))])),
        ]);
        assert_eq!(value_to_json(&doc), r#"{"z":1.0,"a":"x\"y","nested":{"b":true}}"#);
        // Round-trips through the parser with values intact.
        let back = Value::parse(&value_to_json(&doc)).unwrap();
        assert_eq!(canonical_json(&back), canonical_json(&doc));
    }

    #[test]
    fn error_and_overloaded_lines_parse_as_json() {
        for line in [error_to_json("r\"1", "usage", "bad\nthing"), overloaded_to_json("")] {
            let doc = Value::parse(&line).unwrap();
            assert!(doc.is_object(), "{line}");
        }
    }
}
