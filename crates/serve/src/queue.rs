//! A bounded MPMC queue with explicit backpressure.
//!
//! Readers `try_push` and never block: a full (or closed) queue hands the
//! item straight back so the caller can answer `overloaded` instead of
//! buffering unboundedly — load shedding at the edge, as the ISSUE's
//! serving model requires. Workers `pop`, blocking on a condvar until work
//! arrives or the queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Rejection from [`BoundedQueue::try_push`]; carries the item back.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item` unless the queue is full or closed, returning the
    /// depth after the push. Never blocks.
    ///
    /// # Errors
    /// [`QueueFull`] with the item handed back. A closed queue also rejects:
    /// during drain-then-exit the daemon shouldn't accept new work.
    pub fn try_push(&self, item: T) -> Result<usize, QueueFull<T>> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed *and* drained — the
    /// worker-pool exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing, pops drain what remains and
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        let QueueFull(rejected) = q.try_push(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.try_push(3).is_err(), "closed queue must reject");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays None after drain");
    }

    #[test]
    fn pop_blocks_until_push_across_threads() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn every_item_is_popped_exactly_once_under_contention() {
        let q = std::sync::Arc::new(BoundedQueue::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..1000 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
