//! The TCP daemon: accept loop, reader threads, worker pool, drain.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!   accept loop ──► reader thread per connection ──► bounded MPMC queue
//!                   (parse, cache fast path,          │
//!                    backpressure: overloaded)        ▼
//!                                               fixed worker pool
//!                                               (deadline check, solve,
//!                                                cache fill, respond)
//! ```
//!
//! Responses are written through a per-connection `Mutex<TcpStream>` clone,
//! so readers (cache hits, rejections) and workers (solve results) can both
//! answer on the same socket without interleaving bytes.
//!
//! ## Request lifecycle timestamps
//!
//! Every request is stamped at the points DESIGN.md §12 names: `t_recv`
//! (full line read), `t_enqueue` (queue push), `t_dequeue` (worker pop) and
//! completion (response written). The derived phases feed the per-op
//! latency histograms and the access log:
//!
//! * `queue_wait = t_dequeue − t_enqueue` (0 for reader-thread answers),
//! * `service   = done − t_dequeue` (platform build + solve + write),
//! * `total     = done − t_recv`.
//!
//! All three come from one monotone clock, so
//! `queue_wait + service ≤ total` always holds (the M070 lint checks it on
//! the access log). When [`ServeOptions::access_log`] is set, every
//! completed request appends one JSONL line; requests whose `total` is at
//! least [`ServeOptions::slow_threshold`] additionally carry the solver's
//! span tree captured via [`mosc_obs::TraceContext`].
//!
//! Shutdown is a protocol op, not a signal: the workspace forbids `unsafe`,
//! so no signal handler can be installed, and `{"op":"shutdown"}` plays the
//! role SIGTERM would. On shutdown the daemon stops accepting connections
//! and new requests, closes the queue, lets the workers drain every queued
//! job (each still gets its response), and joins all threads before
//! returning from [`Server::run`].

use crate::cache::{cache_key, cache_key_parts, fnv1a, CacheKey, CachedSolve, LruCache};
use crate::metrics::ServeMetrics;
use crate::proto::{
    batch_response_to_json, canonical_json, error_to_json, json_string, overloaded_to_json,
    parse_request, value_to_json, BatchRequest, ProtoError, Request, SolveRequest, SolveResponse,
};
use crate::queue::{BoundedQueue, QueueFull};
use mosc_analyze::json::Value;
use mosc_core::{AlgoError, BatchVariant, KernelDelta, SolveOptions, SolverKind};
use mosc_obs::{TraceContext, TraceSnapshot};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a blocked reader waits before re-checking the shutdown flag.
/// This bounds the drain latency contributed by idle connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads solving queued requests (`0` = all available cores).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `overloaded`.
    pub queue_capacity: usize,
    /// LRU solution-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Structured JSONL access log path (`None` disables it). The file is
    /// truncated at bind time: one run, one log.
    pub access_log: Option<String>,
    /// Requests whose total latency reaches this threshold get their solver
    /// span tree attached to the access-log line (needs the `mosc-obs`
    /// recorder enabled for the spans to exist).
    pub slow_threshold: Duration,
    /// Windowed timeline JSONL path (`None` disables it). Every completed
    /// request lands in a [`mosc_obs::Timeline`] window; closed windows are
    /// appended as `{"type":"timeline",...}` lines. Unlike the latency
    /// histograms this is not gated on the `mosc-obs` recorder — the
    /// timeline is explicitly opted into by setting the path.
    pub timeline: Option<String>,
    /// Width of one timeline window.
    pub timeline_window: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            access_log: None,
            slow_threshold: Duration::from_millis(100),
            timeline: None,
            timeline_window: Duration::from_secs(1),
        }
    }
}

/// A point-in-time snapshot of the service counters plus the latency
/// summary (milliseconds) of the merged per-op solve histograms.
///
/// The latency quantiles come from the `mosc-obs` latency histograms,
/// which record only while the global recorder is enabled; a server run
/// without `--obs` reports them as `0`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field names mirror the serve.* metrics one-to-one
pub struct ServeStats {
    pub requests: u64,
    pub responses: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rejected: u64,
    pub deadline_exceeded: u64,
    pub malformed: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub cache_len: u64,
    pub uptime_s: f64,
    pub req_per_s: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
}

impl ServeStats {
    /// Renders the `stats` response payload (one line, no newline) through
    /// the shared protocol serializer.
    #[must_use]
    pub fn to_json(&self, id: &str) -> String {
        let n = |v: u64| Value::Number(v as f64);
        let stats = Value::Object(vec![
            ("requests".to_owned(), n(self.requests)),
            ("responses".to_owned(), n(self.responses)),
            ("cache_hits".to_owned(), n(self.cache_hits)),
            ("cache_misses".to_owned(), n(self.cache_misses)),
            ("cache_evictions".to_owned(), n(self.cache_evictions)),
            ("rejected".to_owned(), n(self.rejected)),
            ("deadline_exceeded".to_owned(), n(self.deadline_exceeded)),
            ("malformed".to_owned(), n(self.malformed)),
            ("queue_depth".to_owned(), n(self.queue_depth)),
            ("queue_peak".to_owned(), n(self.queue_peak)),
            ("cache_len".to_owned(), n(self.cache_len)),
            ("uptime_s".to_owned(), Value::Number(self.uptime_s)),
            ("req_per_s".to_owned(), Value::Number(self.req_per_s)),
            ("p50_ms".to_owned(), Value::Number(self.p50_ms)),
            ("p90_ms".to_owned(), Value::Number(self.p90_ms)),
            ("p99_ms".to_owned(), Value::Number(self.p99_ms)),
            ("p999_ms".to_owned(), Value::Number(self.p999_ms)),
            ("max_ms".to_owned(), Value::Number(self.max_ms)),
        ]);
        let doc = Value::Object(vec![
            ("id".to_owned(), Value::String(id.to_owned())),
            ("status".to_owned(), Value::String("ok".to_owned())),
            ("stats".to_owned(), stats),
        ]);
        value_to_json(&doc)
    }
}

/// One queued unit of work, stamped at receipt and at enqueue.
struct Job {
    payload: Payload,
    conn: u64,
    /// First per-connection sequence number of this line. A batch line
    /// consumes one seq per variant (variant `i` logs as `seq + i`), so the
    /// per-connection sequence stays collision-free for the M093 lint.
    seq: u64,
    writer: SharedWriter,
    deadline_at: Option<Instant>,
    t_recv: Instant,
    t_enqueue: Instant,
}

/// What a queued line asks for.
enum Payload {
    /// One solver on one platform, keyed for the solution cache.
    Single(SolveRequest, CacheKey),
    /// Many variants of one shared platform. The second field is the
    /// canonical platform serialization — the interning-registry preimage —
    /// computed once on the reader thread.
    Batch(BatchRequest, String),
}

type SharedWriter = Arc<Mutex<TcpStream>>;

/// State shared by the accept loop, readers and workers.
struct Shared {
    opts: ServeOptions,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    metrics: ServeMetrics,
    access: Option<Mutex<File>>,
    /// Windowed completion timeline plus its output file; closed windows
    /// are appended as they fill, the in-progress window at drain.
    timeline: Option<(mosc_obs::Timeline, Mutex<File>)>,
    start: Instant,
    shutdown: AtomicBool,
    /// Connection-id allocator; ids start at 1 so `conn` is never falsy in
    /// log-processing tools.
    conns: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let merged = self.metrics.solve_total();
        let q = |p: f64| merged.quantile(p).map_or(0.0, |s| s * 1e3);
        ServeStats {
            requests: self.metrics.requests.get(),
            responses: self.metrics.responses.get(),
            cache_hits: self.metrics.cache_hits.get(),
            cache_misses: self.metrics.cache_misses.get(),
            cache_evictions: self.metrics.cache_evictions.get(),
            rejected: self.metrics.rejected.get(),
            deadline_exceeded: self.metrics.deadline_exceeded.get(),
            malformed: self.metrics.malformed.get(),
            queue_depth: self.queue.len() as u64,
            queue_peak: self.metrics.queue_peak.get(),
            cache_len: self.lock_cache().len() as u64,
            uptime_s: self.start.elapsed().as_secs_f64(),
            req_per_s: self.metrics.rate.per_sec(),
            p50_ms: q(0.5),
            p90_ms: q(0.9),
            p99_ms: q(0.99),
            p999_ms: q(0.999),
            max_ms: if merged.count > 0 { merged.max * 1e3 } else { 0.0 },
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flags shutdown and wakes the accept loop with a throwaway
    /// connection (the pure-std replacement for signalling the thread).
    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A cloneable remote control for a bound server; lets tests and the CLI
/// trigger the same drain-then-exit path as the wire `shutdown` op.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begins drain-then-exit, as if `{"op":"shutdown"}` had arrived.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Current service counters and latency summary.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// A bound (but not yet running) solve service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket and (when configured) creates the access
    /// log. The server only starts serving on [`run`](Self::run).
    ///
    /// # Errors
    /// I/O errors from binding, inspecting the socket, or creating the
    /// access-log file.
    pub fn bind(opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let access = match &opts.access_log {
            None => None,
            Some(path) => Some(Mutex::new(File::create(path)?)),
        };
        let timeline = match &opts.timeline {
            None => None,
            Some(path) => Some((
                mosc_obs::Timeline::new(opts.timeline_window.as_secs_f64()),
                Mutex::new(File::create(path)?),
            )),
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(opts.queue_capacity),
            cache: Mutex::new(LruCache::new(opts.cache_capacity)),
            metrics: ServeMetrics::new(),
            access,
            timeline,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            addr,
            opts,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (useful with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control for this server.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: self.shared.clone() }
    }

    /// Serves until a shutdown is requested (wire op or [`ServeHandle`]),
    /// then drains: queued jobs all get responses, every thread is joined,
    /// and the access log (if any) gets its `hist_snapshot` and
    /// `serve_summary` trailer lines.
    ///
    /// # Errors
    /// Fatal accept-loop I/O errors only; per-connection errors are
    /// contained to their connection.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        let workers = if shared.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            shared.opts.workers
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(shared));
            }
            for stream in self.listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(|| handle_connection(stream, shared));
            }
            // Drain: no new work, workers finish what is queued, readers
            // notice the flag within READ_POLL and exit.
            shared.queue.close();
        });
        write_access_trailer(shared);
        write_timeline_trailer(shared);
        Ok(())
    }
}

/// The worker side: pop, enforce the deadline, consult the cache, solve,
/// respond.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let t_dequeue = Instant::now();
        shared.metrics.on_queue_depth(shared.queue.len() as u64);
        match &job.payload {
            Payload::Single(req, key) => process_job(shared, &job, req, key, t_dequeue),
            Payload::Batch(req, canonical_platform) => {
                process_batch(shared, &job, req, canonical_platform, t_dequeue);
            }
        }
    }
}

/// Everything [`finish`] needs to close out one request: identity, timing
/// anchors, and (for solved requests) the kernel-counter deltas and the
/// captured span tree.
struct Completion<'a> {
    id: &'a str,
    /// `"solve"` for solver requests, else the protocol op (or `"parse"`).
    op: &'a str,
    solver: Option<SolverKind>,
    /// `"ok"`, `"error"` or `"overloaded"`.
    status: &'a str,
    cached: bool,
    /// Connection id and per-connection line sequence number — the join
    /// fields the M093 lint orders the log by.
    conn: u64,
    seq: u64,
    /// Canonical cache key for solve ops (the M082 lint joins hits to
    /// fills on it); `None` for protocol ops.
    key: Option<u64>,
    t_recv: Instant,
    /// Queue-push time; reader-thread answers never queue, so it equals
    /// `t_recv` for them.
    t_enqueue: Instant,
    queue_wait: f64,
    service_start: Instant,
    deadline_at: Option<Instant>,
    kernel: KernelDelta,
    trace: Option<TraceSnapshot>,
    /// The enclosing `solve_batch` request id when this completion is one
    /// variant of a batch (the M110/M111 lints group entries on it);
    /// `None` for single solves and protocol ops.
    batch: Option<&'a str>,
}

impl<'a> Completion<'a> {
    /// A protocol op or parse error: never queued, no solver attached.
    fn proto(
        id: &'a str,
        op: &'a str,
        status: &'a str,
        t_recv: Instant,
        conn: u64,
        seq: u64,
    ) -> Self {
        Self {
            id,
            op,
            solver: None,
            status,
            cached: false,
            conn,
            seq,
            key: None,
            t_recv,
            t_enqueue: t_recv,
            queue_wait: 0.0,
            service_start: t_recv,
            deadline_at: None,
            kernel: KernelDelta::default(),
            trace: None,
            batch: None,
        }
    }
}

/// Records the request's phase latencies into the per-op histograms,
/// appends the access-log line, then writes the response. The single exit
/// path for every request, so no completion can miss a histogram or log
/// entry — and because recording happens *before* the bytes land, a client
/// that reads its response and immediately scrapes `metrics` (or `stats`)
/// is guaranteed to see its own request counted. The phases therefore
/// exclude the socket write itself, which is microseconds against
/// millisecond solves.
fn finish(shared: &Shared, writer: &SharedWriter, line: &str, c: &Completion<'_>) {
    record_completion(shared, c, Instant::now());
    if c.solver.is_some() {
        respond(shared, writer, c.id, line);
    } else {
        respond_proto(shared, writer, line);
    }
}

/// The recording half of [`finish`]: histograms, timeline and access log
/// for one completion, without writing any response bytes. The batch path
/// calls this once per variant and then frames a single response line.
fn record_completion(shared: &Shared, c: &Completion<'_>, done: Instant) {
    let service = done.saturating_duration_since(c.service_start).as_secs_f64();
    let total = done.saturating_duration_since(c.t_recv).as_secs_f64();
    match c.solver {
        Some(kind) => shared.metrics.record_solve(kind, c.queue_wait, service, total),
        None => shared.metrics.record_proto(total),
    }
    record_timeline(shared, total, c.cached);
    log_access(shared, c, done, service, total);
}

/// Lands one completion in the windowed timeline (when configured) and
/// appends any windows that closed. Writing here, on the completion path,
/// keeps the output ordered without a sampler thread; an idle server
/// simply flushes its backlog of empty windows on the next request.
fn record_timeline(shared: &Shared, total_s: f64, cached: bool) {
    let Some((timeline, file)) = &shared.timeline else { return };
    timeline.record(total_s, cached);
    timeline.note_depth(shared.queue.len() as u64);
    let closed = timeline.drain_closed();
    if !closed.is_empty() {
        let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(mosc_obs::Timeline::render_jsonl(&closed).as_bytes());
    }
}

/// Flushes the in-progress timeline window at drain.
fn write_timeline_trailer(shared: &Shared) {
    let Some((timeline, file)) = &shared.timeline else { return };
    let remaining = timeline.finish();
    if !remaining.is_empty() {
        let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(mosc_obs::Timeline::render_jsonl(&remaining).as_bytes());
    }
}

/// Appends one `{"type":"access",...}` JSONL line for a completed request.
fn log_access(shared: &Shared, c: &Completion<'_>, done: Instant, service: f64, total: f64) {
    let Some(access) = &shared.access else { return };
    let num = Value::Number;
    let mut members: Vec<(String, Value)> = vec![
        ("type".to_owned(), Value::String("access".to_owned())),
        ("t_s".to_owned(), num(shared.start.elapsed().as_secs_f64())),
        ("id".to_owned(), Value::String(c.id.to_owned())),
        ("op".to_owned(), Value::String(c.op.to_owned())),
        ("solver".to_owned(), c.solver.map_or(Value::Null, |k| Value::String(k.id().to_owned()))),
        ("status".to_owned(), Value::String(c.status.to_owned())),
        ("cached".to_owned(), Value::Bool(c.cached)),
        ("queue_wait_s".to_owned(), num(c.queue_wait)),
        ("service_s".to_owned(), num(service)),
        ("total_s".to_owned(), num(total)),
        (
            "deadline_slack_s".to_owned(),
            c.deadline_at.map_or(Value::Null, |at| num(signed_slack(at, done))),
        ),
        ("expm_calls".to_owned(), num(c.kernel.expm_calls as f64)),
        ("period_map_matmuls".to_owned(), num(c.kernel.period_map_matmuls as f64)),
        ("steady_state_calls".to_owned(), num(c.kernel.steady_state_calls as f64)),
        ("linalg_matmuls".to_owned(), num(c.kernel.linalg_matmuls as f64)),
        ("eigen_calls".to_owned(), num(c.kernel.eigen_calls as f64)),
        ("registry_hits".to_owned(), num(c.kernel.registry_hits as f64)),
        ("registry_misses".to_owned(), num(c.kernel.registry_misses as f64)),
        ("conn".to_owned(), num(c.conn as f64)),
        ("seq".to_owned(), num(c.seq as f64)),
        // The cache key travels as a hex string: JSON numbers are f64 and
        // cannot carry 64 bits losslessly.
        ("key".to_owned(), c.key.map_or(Value::Null, |k| Value::String(format!("{k:016x}")))),
        ("t_recv_s".to_owned(), num(since_start(shared, c.t_recv))),
        ("t_enqueue_s".to_owned(), num(since_start(shared, c.t_enqueue))),
        ("t_dequeue_s".to_owned(), num(since_start(shared, c.service_start))),
        ("t_done_s".to_owned(), num(since_start(shared, done))),
    ];
    if let Some(batch) = c.batch {
        members.push(("batch".to_owned(), Value::String(batch.to_owned())));
    }
    if total >= shared.opts.slow_threshold.as_secs_f64() {
        if let Some(trace) = c.trace.as_ref().filter(|t| !t.is_empty()) {
            let spans: Vec<Value> = trace
                .spans
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("path".to_owned(), Value::String(s.path.clone())),
                        ("depth".to_owned(), num(s.depth as f64)),
                        ("calls".to_owned(), num(s.calls as f64)),
                        ("total_s".to_owned(), num(s.total.as_secs_f64())),
                        ("self_s".to_owned(), num(s.self_time.as_secs_f64())),
                    ])
                })
                .collect();
            members.push(("spans".to_owned(), Value::Array(spans)));
        }
    }
    write_access_line(access, &Value::Object(members));
}

/// Seconds since server start on the one monotone clock every lifecycle
/// timestamp shares — the clock the M090/M092 lints assume.
fn since_start(shared: &Shared, at: Instant) -> f64 {
    at.saturating_duration_since(shared.start).as_secs_f64()
}

/// Seconds from `now` until `at`: positive when the deadline is still
/// ahead, negative when it has already passed.
fn signed_slack(at: Instant, now: Instant) -> f64 {
    match at.checked_duration_since(now) {
        Some(left) => left.as_secs_f64(),
        None => -now.saturating_duration_since(at).as_secs_f64(),
    }
}

/// One serialized line into the access log. Write errors (disk full, log
/// on a vanished mount) must not take the request path down with them.
fn write_access_line(access: &Mutex<File>, doc: &Value) {
    let line = value_to_json(doc);
    let mut file = access.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(file, "{line}");
}

/// Drain-time access-log trailer: one `hist_snapshot` line per non-empty
/// latency histogram (elided empty buckets, `+Inf` last) and one
/// `serve_summary` line with the final counters — the inputs to the M072
/// and M073 lints.
fn write_access_trailer(shared: &Shared) {
    let Some(access) = &shared.access else { return };
    let num = Value::Number;
    for (name, snap) in shared.metrics.latency_snapshots() {
        let cumulative = snap.cumulative();
        let mut buckets = Vec::new();
        let mut prev = 0u64;
        for (i, &(le, cum)) in cumulative.iter().enumerate() {
            let last = i == cumulative.len() - 1;
            if cum == prev && !last {
                continue;
            }
            prev = cum;
            let le_value = if last { Value::String("+Inf".to_owned()) } else { Value::Number(le) };
            buckets.push(Value::Object(vec![
                ("le".to_owned(), le_value),
                ("cum".to_owned(), num(cum as f64)),
            ]));
        }
        let doc = Value::Object(vec![
            ("type".to_owned(), Value::String("hist_snapshot".to_owned())),
            ("name".to_owned(), Value::String(name.to_owned())),
            ("count".to_owned(), num(snap.count as f64)),
            ("sum".to_owned(), num(snap.sum)),
            ("buckets".to_owned(), Value::Array(buckets)),
        ]);
        write_access_line(access, &doc);
    }
    let s = shared.stats();
    let doc = Value::Object(vec![
        ("type".to_owned(), Value::String("serve_summary".to_owned())),
        ("requests".to_owned(), num(s.requests as f64)),
        ("responses".to_owned(), num(s.responses as f64)),
        ("cache_hits".to_owned(), num(s.cache_hits as f64)),
        ("cache_misses".to_owned(), num(s.cache_misses as f64)),
        ("cache_evictions".to_owned(), num(s.cache_evictions as f64)),
        ("rejected".to_owned(), num(s.rejected as f64)),
        ("deadline_exceeded".to_owned(), num(s.deadline_exceeded as f64)),
        ("malformed".to_owned(), num(s.malformed as f64)),
        ("queue_peak".to_owned(), num(s.queue_peak as f64)),
        ("uptime_s".to_owned(), num(s.uptime_s)),
    ]);
    write_access_line(access, &doc);
}

fn process_job(shared: &Shared, job: &Job, req: &SolveRequest, key: &CacheKey, t_dequeue: Instant) {
    let id = &req.id;
    let queue_wait = t_dequeue.saturating_duration_since(job.t_enqueue).as_secs_f64();
    let base = Completion {
        id,
        op: "solve",
        solver: Some(req.kind),
        status: "ok",
        cached: false,
        conn: job.conn,
        seq: job.seq,
        key: Some(key.hash),
        t_recv: job.t_recv,
        t_enqueue: job.t_enqueue,
        queue_wait,
        service_start: t_dequeue,
        deadline_at: job.deadline_at,
        kernel: KernelDelta::default(),
        trace: None,
        batch: None,
    };
    // Deadline may already have burned off while queued.
    let remaining = match job.deadline_at {
        None => None,
        Some(at) => match at.checked_duration_since(Instant::now()) {
            Some(left) if left > Duration::ZERO => Some(left),
            _ => {
                shared.metrics.on_deadline_exceeded();
                finish(
                    shared,
                    &job.writer,
                    &error_to_json(id, "deadline", "deadline expired while queued"),
                    &Completion { status: "error", ..base },
                );
                return;
            }
        },
    };
    // A duplicate may have filled the cache while this job waited.
    if let Some(hit) = shared.lock_cache().get(key) {
        shared.metrics.on_cache_hit();
        let line = render_ok(req, &hit, true);
        finish(shared, &job.writer, &line, &Completion { cached: true, ..base });
        return;
    }
    shared.metrics.on_cache_miss();

    let doc = Value::Object(vec![("platform".to_owned(), req.platform.clone())]);
    let platform = match mosc_analyze::platform_from_doc(&doc) {
        Ok(p) => p,
        Err(e) => {
            finish(
                shared,
                &job.writer,
                &error_to_json(id, "usage", &e.to_string()),
                &Completion { status: "error", ..base },
            );
            return;
        }
    };
    let opts = SolveOptions { deadline: remaining, ..req.options };
    // The context hands this request's identity across the solve: the
    // solver's root span tree and counter increments recorded on this
    // thread land in the snapshot attached to the access-log line.
    let trace = TraceContext::new();
    let result = trace.observe(|| mosc_core::solve(req.kind, &platform, &opts));
    match result {
        Ok(report) => {
            // The deadline must hold when the response is written, not just
            // at dequeue: the polynomial solvers run to completion by
            // contract, so a slow solve can sail past it. Answer the
            // deadline error the client asked for, and do NOT cache the
            // late result — a cache fill logged as an error would leave
            // later hits' keys unannounced for the M082 lint.
            if job.deadline_at.is_some_and(|at| Instant::now() > at) {
                shared.metrics.on_deadline_exceeded();
                finish(
                    shared,
                    &job.writer,
                    &error_to_json(id, "deadline", "deadline expired during solve"),
                    &Completion {
                        status: "error",
                        kernel: report.kernel,
                        trace: Some(trace.snapshot()),
                        ..base
                    },
                );
                return;
            }
            let cached = CachedSolve {
                solver: req.kind,
                throughput: report.solution.throughput,
                peak_c: report.solution.peak_c(&platform),
                feasible: report.solution.feasible,
                m: report.solution.m,
                wall_ms: report.wall.as_secs_f64() * 1e3,
                stats: report.stats,
                schedule_text: mosc_sched::text::to_text(&report.solution.schedule),
            };
            let line = render_ok(req, &cached, false);
            if shared.lock_cache().insert(key, cached) {
                shared.metrics.on_cache_eviction();
            }
            finish(
                shared,
                &job.writer,
                &line,
                &Completion { kernel: report.kernel, trace: Some(trace.snapshot()), ..base },
            );
        }
        Err(e) => {
            let kind = match &e {
                AlgoError::Infeasible { .. } => "infeasible",
                AlgoError::DeadlineExceeded => {
                    shared.metrics.on_deadline_exceeded();
                    "deadline"
                }
                AlgoError::InvalidOptions { .. } => "usage",
                AlgoError::Sched(_) => "internal",
            };
            finish(
                shared,
                &job.writer,
                &error_to_json(id, kind, &e.to_string()),
                &Completion { status: "error", trace: Some(trace.snapshot()), ..base },
            );
        }
    }
}

/// One variant's outcome inside a batch: the rendered result object plus
/// what its access-log entry must say.
struct VariantOutcome {
    line: String,
    status: &'static str,
    cached: bool,
    kernel: KernelDelta,
}

/// The worker side of `solve_batch`: resolve the shared platform once
/// through the interning registry, consult the solution cache per variant,
/// fan the misses over [`mosc_core::solve_batch`], fill the cache, record
/// one access entry per variant (op `"solve"`, ids `"<batch id>#<i>"`,
/// sequence numbers `job.seq + i`), and answer with a single framed line.
fn process_batch(
    shared: &Shared,
    job: &Job,
    req: &BatchRequest,
    canonical_platform: &str,
    t_dequeue: Instant,
) {
    let queue_wait = t_dequeue.saturating_duration_since(job.t_enqueue).as_secs_f64();
    let bid = &req.id;
    // Resolve the platform once. Eigendecomposition work across the resolve
    // is measured so the access log can prove a warm batch did none — the
    // M110 lint joins `registry_hits > 0` against `eigen_calls`.
    let eigs = || mosc_obs::counter_value("eigen.calls").unwrap_or(0);
    let eigs_before = eigs();
    let resolved = mosc_core::registry::intern_with(canonical_platform, || {
        let doc = Value::Object(vec![("platform".to_owned(), req.platform.clone())]);
        mosc_analyze::platform_from_doc(&doc)
    });
    let resolve_eigs = eigs().saturating_sub(eigs_before);
    let (platform, warm) = match resolved {
        Ok(resolved) => resolved,
        Err(e) => {
            // Every variant shares the broken platform: one error line for
            // the whole batch, logged under the batch's first seq.
            let c = Completion {
                t_enqueue: job.t_enqueue,
                queue_wait,
                service_start: t_dequeue,
                batch: Some(bid),
                ..Completion::proto(bid, "solve_batch", "error", job.t_recv, job.conn, job.seq)
            };
            record_completion(shared, &c, Instant::now());
            respond(shared, &job.writer, bid, &error_to_json(bid, "usage", &e.to_string()));
            return;
        }
    };
    let ids: Vec<String> = (0..req.variants.len()).map(|i| format!("{bid}#{i}")).collect();
    let keys: Vec<CacheKey> = req
        .variants
        .iter()
        .map(|v| cache_key_parts(canonical_platform, v.kind, &v.options))
        .collect();
    let mut outcomes: Vec<Option<VariantOutcome>> = Vec::with_capacity(req.variants.len());
    let mut misses: Vec<usize> = Vec::new();
    for (i, v) in req.variants.iter().enumerate() {
        if let Some(hit) = shared.lock_cache().get(&keys[i]) {
            shared.metrics.on_cache_hit();
            outcomes.push(Some(VariantOutcome {
                line: render_variant_ok(&ids[i], v.want_schedule, &hit, true),
                status: "ok",
                cached: true,
                kernel: KernelDelta::default(),
            }));
        } else {
            shared.metrics.on_cache_miss();
            misses.push(i);
            outcomes.push(None);
        }
    }
    let variants: Vec<BatchVariant> = misses
        .iter()
        .map(|&i| BatchVariant { kind: req.variants[i].kind, options: req.variants[i].options })
        .collect();
    let results = mosc_core::solve_batch(&platform, &variants, 0);
    for (&i, result) in misses.iter().zip(results) {
        let v = &req.variants[i];
        outcomes[i] = Some(match result {
            Ok(report) => {
                let cached = CachedSolve {
                    solver: v.kind,
                    throughput: report.solution.throughput,
                    peak_c: report.solution.peak_c(&platform),
                    feasible: report.solution.feasible,
                    m: report.solution.m,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    stats: report.stats,
                    schedule_text: mosc_sched::text::to_text(&report.solution.schedule),
                };
                let line = render_variant_ok(&ids[i], v.want_schedule, &cached, false);
                if shared.lock_cache().insert(&keys[i], cached) {
                    shared.metrics.on_cache_eviction();
                }
                VariantOutcome { line, status: "ok", cached: false, kernel: report.kernel }
            }
            Err(e) => {
                let kind = match &e {
                    AlgoError::Infeasible { .. } => "infeasible",
                    AlgoError::DeadlineExceeded => {
                        shared.metrics.on_deadline_exceeded();
                        "deadline"
                    }
                    AlgoError::InvalidOptions { .. } => "usage",
                    AlgoError::Sched(_) => "internal",
                };
                VariantOutcome {
                    line: error_to_json(&ids[i], kind, &e.to_string()),
                    status: "error",
                    cached: false,
                    kernel: KernelDelta::default(),
                }
            }
        });
    }
    // Record every variant, then answer once. Registry attribution is
    // deterministic: each variant reports the batch's resolve outcome, and
    // the resolve's eigendecomposition work lands on the first variant.
    let done = Instant::now();
    let mut lines = Vec::with_capacity(outcomes.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let Some(mut o) = outcome else { continue };
        o.kernel.registry_hits = u64::from(warm);
        o.kernel.registry_misses = u64::from(!warm);
        if i == 0 {
            o.kernel.eigen_calls = o.kernel.eigen_calls.saturating_add(resolve_eigs);
        }
        let c = Completion {
            id: &ids[i],
            op: "solve",
            solver: Some(req.variants[i].kind),
            status: o.status,
            cached: o.cached,
            conn: job.conn,
            seq: job.seq + i as u64,
            key: Some(keys[i].hash),
            t_recv: job.t_recv,
            t_enqueue: job.t_enqueue,
            queue_wait,
            service_start: t_dequeue,
            deadline_at: None,
            kernel: o.kernel,
            trace: None,
            batch: Some(bid),
        };
        record_completion(shared, &c, done);
        lines.push(o.line);
    }
    respond(shared, &job.writer, bid, &batch_response_to_json(bid, warm, &lines));
}

/// Renders an ok response for `req` from a (fresh or cached) solve.
fn render_ok(req: &SolveRequest, solve: &CachedSolve, cached: bool) -> String {
    render_variant_ok(&req.id, req.want_schedule, solve, cached)
}

/// [`render_ok`] with the identity split out: the batch path answers each
/// variant under a derived id (`"<batch id>#<i>"`).
fn render_variant_ok(id: &str, want_schedule: bool, solve: &CachedSolve, cached: bool) -> String {
    SolveResponse {
        id: id.to_owned(),
        solver: solve.solver,
        throughput: solve.throughput,
        peak_c: solve.peak_c,
        feasible: solve.feasible,
        m: solve.m,
        wall_ms: solve.wall_ms,
        cached,
        stats: solve.stats,
        schedule: want_schedule.then(|| solve.schedule_text.clone()),
    }
    .to_json()
}

/// Writes one solve-response line: response metrics plus the
/// `serve.response` event the M062 lint pairs against `serve.request`.
fn respond(shared: &Shared, writer: &SharedWriter, id: &str, line: &str) {
    respond_proto(shared, writer, line);
    mosc_obs::event("serve.response", &[("id", id_hash(id).into())]);
}

/// Writes one response line and records the response metrics, without the
/// request/response event pairing — protocol ops (ping/stats/metrics/
/// shutdown) and parse errors answer lines that no `serve.request` event
/// announced. Write errors mean the client went away; the daemon has
/// nothing useful to do about it.
fn respond_proto(shared: &Shared, writer: &SharedWriter, line: &str) {
    // Count before writing: the moment the bytes land, a client may read
    // them and query `stats`, and the response it just received must
    // already be in the counter.
    shared.metrics.on_response();
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = stream.write_all(framed.as_bytes());
}

/// 32-bit id hash for obs events: event fields travel through JSON numbers
/// (f64), so a full 64-bit hash would not survive the round trip.
fn id_hash(id: &str) -> u64 {
    fnv1a(id.as_bytes()) & 0xFFFF_FFFF
}

/// The reader side: one thread per connection, line-oriented, polling the
/// shutdown flag between reads.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single small writes; Nagle + delayed ACK would add tens
    // of milliseconds of latency per request on an otherwise idle link.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    let conn = shared.conns.fetch_add(1, Ordering::Relaxed) + 1;
    let mut seq: u64 = 0;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed its write half.
            Ok(_) => {
                let t_recv = Instant::now();
                let full = std::mem::take(&mut line);
                let trimmed = full.trim();
                if !trimmed.is_empty() {
                    // A line consumes one seq per logged completion — one
                    // for most requests, one per variant for a batch.
                    seq += handle_line(trimmed, &writer, shared, t_recv, conn, seq);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeout with a partial line already buffered in `line`:
                // keep accumulating on the next pass.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches the `seq`-th request line of connection `conn`, received at
/// `t_recv`. Returns how many sequence numbers the line consumed (one per
/// logged completion: 1 for everything except `solve_batch`, which claims
/// one per variant).
fn handle_line(
    line: &str,
    writer: &SharedWriter,
    shared: &Shared,
    t_recv: Instant,
    conn: u64,
    seq: u64,
) -> u64 {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(ProtoError { message, id }) => {
            shared.metrics.on_malformed();
            finish(
                shared,
                writer,
                &error_to_json(&id, "parse", &message),
                &Completion::proto(&id, "parse", "error", t_recv, conn, seq),
            );
            return 1;
        }
    };
    match request {
        Request::Ping { id } => {
            let pong = format!("{{\"id\":{},\"status\":\"ok\",\"pong\":true}}", json_string(&id));
            finish(shared, writer, &pong, &Completion::proto(&id, "ping", "ok", t_recv, conn, seq));
            1
        }
        Request::Stats { id } => {
            let line = shared.stats().to_json(&id);
            finish(
                shared,
                writer,
                &line,
                &Completion::proto(&id, "stats", "ok", t_recv, conn, seq),
            );
            1
        }
        Request::Metrics { id } => {
            let text = shared.metrics.render_prometheus(
                shared.queue.len() as u64,
                shared.lock_cache().len() as u64,
                shared.start.elapsed().as_secs_f64(),
            );
            let line = format!(
                "{{\"id\":{},\"status\":\"ok\",\"metrics\":{}}}",
                json_string(&id),
                json_string(&text)
            );
            finish(
                shared,
                writer,
                &line,
                &Completion::proto(&id, "metrics", "ok", t_recv, conn, seq),
            );
            1
        }
        Request::Shutdown { id } => {
            let bye =
                format!("{{\"id\":{},\"status\":\"ok\",\"shutting_down\":true}}", json_string(&id));
            finish(
                shared,
                writer,
                &bye,
                &Completion::proto(&id, "shutdown", "ok", t_recv, conn, seq),
            );
            shared.initiate_shutdown();
            1
        }
        Request::Solve(req) => {
            shared.metrics.on_request();
            let key = cache_key(&req);
            mosc_obs::event(
                "serve.request",
                &[("id", id_hash(&req.id).into()), ("key", (key.hash & 0xFFFF_FFFF).into())],
            );
            // Fast path: answer cache hits from the reader thread, without
            // occupying a queue slot or a worker.
            if let Some(hit) = shared.lock_cache().get(&key) {
                shared.metrics.on_cache_hit();
                let line = render_ok(&req, &hit, true);
                finish(
                    shared,
                    writer,
                    &line,
                    &Completion {
                        id: &req.id,
                        op: "solve",
                        solver: Some(req.kind),
                        status: "ok",
                        cached: true,
                        conn,
                        seq,
                        key: Some(key.hash),
                        t_recv,
                        t_enqueue: t_recv,
                        queue_wait: 0.0,
                        service_start: t_recv,
                        deadline_at: None,
                        kernel: KernelDelta::default(),
                        trace: None,
                        batch: None,
                    },
                );
                return 1;
            }
            let deadline_at =
                req.options.deadline.or(shared.opts.default_deadline).map(|d| Instant::now() + d);
            let job = Job {
                payload: Payload::Single(req, key),
                conn,
                seq,
                writer: writer.clone(),
                deadline_at,
                t_recv,
                t_enqueue: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Ok(depth) => shared.metrics.on_queue_depth(depth as u64),
                Err(QueueFull(job)) => {
                    shared.metrics.on_rejected();
                    let Payload::Single(req, key) = &job.payload else { unreachable!() };
                    finish(
                        shared,
                        &job.writer,
                        &overloaded_to_json(&req.id),
                        // A rejected job never queued: its enqueue and
                        // dequeue anchors collapse onto `t_recv` so the
                        // logged pipeline order stays monotone.
                        &Completion {
                            id: &req.id,
                            op: "solve",
                            solver: Some(req.kind),
                            status: "overloaded",
                            cached: false,
                            conn,
                            seq,
                            key: Some(key.hash),
                            t_recv,
                            t_enqueue: t_recv,
                            queue_wait: 0.0,
                            service_start: t_recv,
                            deadline_at: job.deadline_at,
                            kernel: KernelDelta::default(),
                            trace: None,
                            batch: None,
                        },
                    );
                }
            }
            1
        }
        Request::SolveBatch(req) => {
            shared.metrics.on_request();
            let consumed = req.variants.len() as u64;
            // The registry preimage doubles as the request-event key, so
            // repeated-platform batch traffic is visible in telemetry.
            let canonical_platform = canonical_json(&req.platform);
            mosc_obs::event(
                "serve.request",
                &[
                    ("id", id_hash(&req.id).into()),
                    ("key", (fnv1a(canonical_platform.as_bytes()) & 0xFFFF_FFFF).into()),
                ],
            );
            let job = Job {
                payload: Payload::Batch(req, canonical_platform),
                conn,
                seq,
                writer: writer.clone(),
                deadline_at: None,
                t_recv,
                t_enqueue: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Ok(depth) => shared.metrics.on_queue_depth(depth as u64),
                Err(QueueFull(job)) => {
                    shared.metrics.on_rejected();
                    let Payload::Batch(req, _) = &job.payload else { unreachable!() };
                    let c = Completion {
                        status: "overloaded",
                        batch: Some(&req.id),
                        ..Completion::proto(&req.id, "solve_batch", "overloaded", t_recv, conn, seq)
                    };
                    record_completion(shared, &c, Instant::now());
                    respond(shared, &job.writer, &req.id, &overloaded_to_json(&req.id));
                }
            }
            consumed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the old hand-rolled `format!` serializer: ids with
    /// JSON metacharacters must escape, and every field must round-trip
    /// through the parser.
    #[test]
    fn stats_json_escapes_and_round_trips() {
        let stats = ServeStats {
            requests: 7,
            responses: 7,
            cache_hits: 2,
            cache_misses: 5,
            cache_evictions: 1,
            rejected: 0,
            deadline_exceeded: 0,
            malformed: 3,
            queue_depth: 0,
            queue_peak: 4,
            cache_len: 5,
            uptime_s: 1.25,
            req_per_s: 2.5,
            p50_ms: 10.0,
            p90_ms: 20.0,
            p99_ms: 30.0,
            p999_ms: 31.0,
            max_ms: 31.5,
        };
        let line = stats.to_json("quote\"and\nnewline");
        let doc = Value::parse(&line).expect("stats line must be valid JSON");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some("quote\"and\nnewline"));
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        let payload = doc.get("stats").expect("stats member");
        assert_eq!(payload.get("requests").and_then(Value::as_usize), Some(7));
        assert_eq!(payload.get("malformed").and_then(Value::as_usize), Some(3));
        assert_eq!(payload.get("queue_peak").and_then(Value::as_usize), Some(4));
        assert_eq!(payload.get("p99_ms").and_then(Value::as_f64), Some(30.0));
        assert_eq!(payload.get("p999_ms").and_then(Value::as_f64), Some(31.0));
        assert_eq!(payload.get("req_per_s").and_then(Value::as_f64), Some(2.5));
    }

    #[test]
    fn signed_slack_has_both_signs() {
        let now = Instant::now();
        let ahead = now + Duration::from_millis(250);
        assert!(signed_slack(ahead, now) > 0.2);
        assert!(signed_slack(now, ahead) < -0.2);
    }
}
