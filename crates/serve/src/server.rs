//! The TCP daemon: accept loop, reader threads, worker pool, drain.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!   accept loop ──► reader thread per connection ──► bounded MPMC queue
//!                   (parse, cache fast path,          │
//!                    backpressure: overloaded)        ▼
//!                                               fixed worker pool
//!                                               (deadline check, solve,
//!                                                cache fill, respond)
//! ```
//!
//! Responses are written through a per-connection `Mutex<TcpStream>` clone,
//! so readers (cache hits, rejections) and workers (solve results) can both
//! answer on the same socket without interleaving bytes.
//!
//! Shutdown is a protocol op, not a signal: the workspace forbids `unsafe`,
//! so no signal handler can be installed, and `{"op":"shutdown"}` plays the
//! role SIGTERM would. On shutdown the daemon stops accepting connections
//! and new requests, closes the queue, lets the workers drain every queued
//! job (each still gets its response), and joins all threads before
//! returning from [`Server::run`].

use crate::cache::{cache_key, fnv1a, CachedSolve, LruCache};
use crate::proto::{
    error_to_json, json_string, overloaded_to_json, parse_request, ProtoError, Request,
    SolveRequest, SolveResponse,
};
use crate::queue::{BoundedQueue, QueueFull};
use mosc_analyze::json::Value;
use mosc_core::{AlgoError, SolveOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Solve requests received (all ops except ping/stats/shutdown).
static REQUESTS: mosc_obs::Counter = mosc_obs::Counter::new("serve.requests");
/// Response lines written (ok, error and overloaded alike).
static RESPONSES: mosc_obs::Counter = mosc_obs::Counter::new("serve.responses");
/// Solve responses served from the LRU cache.
static CACHE_HITS: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_hits");
/// Solve requests that missed the cache and went to a worker.
static CACHE_MISSES: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_misses");
/// Entries displaced by LRU eviction.
static CACHE_EVICTIONS: mosc_obs::Counter = mosc_obs::Counter::new("serve.cache_evictions");
/// Requests shed with an `overloaded` response (queue full or draining).
static REJECTED: mosc_obs::Counter = mosc_obs::Counter::new("serve.rejected");
/// Requests whose deadline expired (in queue or mid-solve).
static DEADLINE_EXCEEDED: mosc_obs::Counter = mosc_obs::Counter::new("serve.deadline_exceeded");
/// Queue depth after the most recent push/pop.
static QUEUE_DEPTH: mosc_obs::Gauge = mosc_obs::Gauge::new("serve.queue_depth");
/// Highest queue depth observed since start.
static QUEUE_PEAK: mosc_obs::Gauge = mosc_obs::Gauge::new("serve.queue_peak");

/// How long a blocked reader waits before re-checking the shutdown flag.
/// This bounds the drain latency contributed by idle connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads solving queued requests (`0` = all available cores).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `overloaded`.
    pub queue_capacity: usize,
    /// LRU solution-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
        }
    }
}

/// Monotone service counters, mirrored into the `serve.*` `mosc-obs`
/// metrics. Kept separately as plain atomics so the `stats` op and the
/// loopback tests can read them even when the global recorder is disabled.
#[derive(Debug, Default)]
struct Metrics {
    requests: AtomicU64,
    responses: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    malformed: AtomicU64,
    queue_peak: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the serve.* metrics one-to-one
pub struct ServeStats {
    pub requests: u64,
    pub responses: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rejected: u64,
    pub deadline_exceeded: u64,
    pub malformed: u64,
    pub queue_depth: u64,
    pub queue_peak: u64,
    pub cache_len: u64,
}

impl ServeStats {
    /// Renders the `stats` response payload (one line, no newline).
    #[must_use]
    pub fn to_json(&self, id: &str) -> String {
        format!(
            "{{\"id\":{},\"status\":\"ok\",\"stats\":{{\"requests\":{},\"responses\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\"rejected\":{},\
             \"deadline_exceeded\":{},\"malformed\":{},\"queue_depth\":{},\"queue_peak\":{},\
             \"cache_len\":{}}}}}",
            json_string(id),
            self.requests,
            self.responses,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.rejected,
            self.deadline_exceeded,
            self.malformed,
            self.queue_depth,
            self.queue_peak,
            self.cache_len
        )
    }
}

/// One queued unit of work.
struct Job {
    req: SolveRequest,
    key: u64,
    writer: SharedWriter,
    deadline_at: Option<Instant>,
}

type SharedWriter = Arc<Mutex<TcpStream>>;

/// State shared by the accept loop, readers and workers.
struct Shared {
    opts: ServeOptions,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.metrics.requests.load(Ordering::Relaxed),
            responses: self.metrics.responses.load(Ordering::Relaxed),
            cache_hits: self.metrics.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.metrics.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.metrics.cache_evictions.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            deadline_exceeded: self.metrics.deadline_exceeded.load(Ordering::Relaxed),
            malformed: self.metrics.malformed.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_peak: self.metrics.queue_peak.load(Ordering::Relaxed),
            cache_len: self.lock_cache().len() as u64,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache> {
        self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Flags shutdown and wakes the accept loop with a throwaway
    /// connection (the pure-std replacement for signalling the thread).
    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A cloneable remote control for a bound server; lets tests and the CLI
/// trigger the same drain-then-exit path as the wire `shutdown` op.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begins drain-then-exit, as if `{"op":"shutdown"}` had arrived.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Current service counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// A bound (but not yet running) solve service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket. The server only starts serving on
    /// [`run`](Self::run).
    ///
    /// # Errors
    /// I/O errors from binding or inspecting the socket.
    pub fn bind(opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(opts.queue_capacity),
            cache: Mutex::new(LruCache::new(opts.cache_capacity)),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            addr,
            opts,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (useful with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control for this server.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: self.shared.clone() }
    }

    /// Serves until a shutdown is requested (wire op or [`ServeHandle`]),
    /// then drains: queued jobs all get responses, every thread is joined.
    ///
    /// # Errors
    /// Fatal accept-loop I/O errors only; per-connection errors are
    /// contained to their connection.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        let workers = if shared.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            shared.opts.workers
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(shared));
            }
            for stream in self.listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(|| handle_connection(stream, shared));
            }
            // Drain: no new work, workers finish what is queued, readers
            // notice the flag within READ_POLL and exit.
            shared.queue.close();
        });
        Ok(())
    }
}

/// The worker side: pop, enforce the deadline, consult the cache, solve,
/// respond.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        QUEUE_DEPTH.set(shared.queue.len() as f64);
        process_job(shared, &job);
    }
}

fn process_job(shared: &Shared, job: &Job) {
    let id = &job.req.id;
    // Deadline may already have burned off while queued.
    let remaining = match job.deadline_at {
        None => None,
        Some(at) => match at.checked_duration_since(Instant::now()) {
            Some(left) if left > Duration::ZERO => Some(left),
            _ => {
                shared.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                DEADLINE_EXCEEDED.incr();
                respond(
                    shared,
                    &job.writer,
                    id,
                    &error_to_json(id, "deadline", "deadline expired while queued"),
                );
                return;
            }
        },
    };
    // A duplicate may have filled the cache while this job waited.
    if let Some(hit) = shared.lock_cache().get(job.key) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        CACHE_HITS.incr();
        respond(shared, &job.writer, id, &render_ok(&job.req, &hit, true));
        return;
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    CACHE_MISSES.incr();

    let doc = Value::Object(vec![("platform".to_owned(), job.req.platform.clone())]);
    let platform = match mosc_analyze::platform_from_doc(&doc) {
        Ok(p) => p,
        Err(e) => {
            respond(shared, &job.writer, id, &error_to_json(id, "usage", &e.to_string()));
            return;
        }
    };
    let opts = SolveOptions { deadline: remaining, ..job.req.options };
    match mosc_core::solve(job.req.kind, &platform, &opts) {
        Ok(report) => {
            let cached = CachedSolve {
                solver: job.req.kind,
                throughput: report.solution.throughput,
                peak_c: report.solution.peak_c(&platform),
                feasible: report.solution.feasible,
                m: report.solution.m,
                wall_ms: report.wall.as_secs_f64() * 1e3,
                stats: report.stats,
                schedule_text: mosc_sched::text::to_text(&report.solution.schedule),
            };
            if shared.lock_cache().insert(job.key, cached.clone()) {
                shared.metrics.cache_evictions.fetch_add(1, Ordering::Relaxed);
                CACHE_EVICTIONS.incr();
            }
            respond(shared, &job.writer, id, &render_ok(&job.req, &cached, false));
        }
        Err(e) => {
            let kind = match &e {
                AlgoError::Infeasible { .. } => "infeasible",
                AlgoError::DeadlineExceeded => {
                    shared.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    DEADLINE_EXCEEDED.incr();
                    "deadline"
                }
                AlgoError::InvalidOptions { .. } => "usage",
                AlgoError::Sched(_) => "internal",
            };
            respond(shared, &job.writer, id, &error_to_json(id, kind, &e.to_string()));
        }
    }
}

/// Renders an ok response for `req` from a (fresh or cached) solve.
fn render_ok(req: &SolveRequest, solve: &CachedSolve, cached: bool) -> String {
    SolveResponse {
        id: req.id.clone(),
        solver: solve.solver,
        throughput: solve.throughput,
        peak_c: solve.peak_c,
        feasible: solve.feasible,
        m: solve.m,
        wall_ms: solve.wall_ms,
        cached,
        stats: solve.stats,
        schedule: req.want_schedule.then(|| solve.schedule_text.clone()),
    }
    .to_json()
}

/// Writes one solve-response line: response metrics plus the
/// `serve.response` event the M062 lint pairs against `serve.request`.
fn respond(shared: &Shared, writer: &SharedWriter, id: &str, line: &str) {
    respond_proto(shared, writer, line);
    mosc_obs::event("serve.response", &[("id", id_hash(id).into())]);
}

/// Writes one response line and records the response metrics, without the
/// request/response event pairing — protocol ops (ping/stats/shutdown) and
/// parse errors answer lines that no `serve.request` event announced.
/// Write errors mean the client went away; the daemon has nothing useful
/// to do about it.
fn respond_proto(shared: &Shared, writer: &SharedWriter, line: &str) {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    let mut stream = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = stream.write_all(framed.as_bytes());
    drop(stream);
    shared.metrics.responses.fetch_add(1, Ordering::Relaxed);
    RESPONSES.incr();
}

/// 32-bit id hash for obs events: event fields travel through JSON numbers
/// (f64), so a full 64-bit hash would not survive the round trip.
fn id_hash(id: &str) -> u64 {
    fnv1a(id.as_bytes()) & 0xFFFF_FFFF
}

/// The reader side: one thread per connection, line-oriented, polling the
/// shutdown flag between reads.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single small writes; Nagle + delayed ACK would add tens
    // of milliseconds of latency per request on an otherwise idle link.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed its write half.
            Ok(_) => {
                let full = std::mem::take(&mut line);
                let trimmed = full.trim();
                if !trimmed.is_empty() {
                    handle_line(trimmed, &writer, shared);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeout with a partial line already buffered in `line`:
                // keep accumulating on the next pass.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches one request line.
fn handle_line(line: &str, writer: &SharedWriter, shared: &Shared) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(ProtoError { message, id }) => {
            shared.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            respond_proto(shared, writer, &error_to_json(&id, "parse", &message));
            return;
        }
    };
    match request {
        Request::Ping { id } => {
            let pong = format!("{{\"id\":{},\"status\":\"ok\",\"pong\":true}}", json_string(&id));
            respond_proto(shared, writer, &pong);
        }
        Request::Stats { id } => {
            let line = shared.stats().to_json(&id);
            respond_proto(shared, writer, &line);
        }
        Request::Shutdown { id } => {
            let bye =
                format!("{{\"id\":{},\"status\":\"ok\",\"shutting_down\":true}}", json_string(&id));
            respond_proto(shared, writer, &bye);
            shared.initiate_shutdown();
        }
        Request::Solve(req) => {
            shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
            REQUESTS.incr();
            let key = cache_key(&req);
            mosc_obs::event(
                "serve.request",
                &[("id", id_hash(&req.id).into()), ("key", (key & 0xFFFF_FFFF).into())],
            );
            // Fast path: answer cache hits from the reader thread, without
            // occupying a queue slot or a worker.
            if let Some(hit) = shared.lock_cache().get(key) {
                shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.incr();
                let line = render_ok(&req, &hit, true);
                respond(shared, writer, &req.id, &line);
                return;
            }
            let deadline_at =
                req.options.deadline.or(shared.opts.default_deadline).map(|d| Instant::now() + d);
            let job = Job { key, writer: writer.clone(), deadline_at, req };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    QUEUE_DEPTH.set(depth as f64);
                    let peak = shared.metrics.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
                    QUEUE_PEAK.set(peak.max(depth as u64) as f64);
                }
                Err(QueueFull(job)) => {
                    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    REJECTED.incr();
                    respond(shared, &job.writer, &job.req.id, &overloaded_to_json(&job.req.id));
                }
            }
        }
    }
}
