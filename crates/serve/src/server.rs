//! The TCP daemon: accept loop, reader threads, worker pool, drain.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!   accept loop ──► reader thread per connection ──► bounded MPMC queue
//!                   (parse, cache fast path,          │
//!                    backpressure: overloaded)        ▼
//!                                               fixed worker pool
//!                                               (deadline check, solve,
//!                                                cache fill, respond)
//! ```
//!
//! Responses are written through a per-connection `Mutex<TcpStream>` clone,
//! so readers (cache hits, rejections) and workers (solve results) can both
//! answer on the same socket without interleaving bytes.
//!
//! ## Request lifecycle timestamps
//!
//! Every request is stamped at the points DESIGN.md §12 names: `t_recv`
//! (full line read), `t_enqueue` (queue push), `t_dequeue` (worker pop) and
//! completion (response written). The derived phases feed the per-op
//! latency histograms and the access log:
//!
//! * `queue_wait = t_dequeue − t_enqueue` (0 for reader-thread answers),
//! * `service   = done − t_dequeue` (platform build + solve + write),
//! * `total     = done − t_recv`.
//!
//! All three come from one monotone clock, so
//! `queue_wait + service ≤ total` always holds (the M070 lint checks it on
//! the access log). When [`ServeOptions::access_log`] is set, every
//! completed request appends one JSONL line; requests whose `total` is at
//! least [`ServeOptions::slow_threshold`] additionally carry the solver's
//! span tree captured via [`mosc_obs::TraceContext`].
//!
//! Shutdown is a protocol op, not a signal: the workspace forbids `unsafe`,
//! so no signal handler can be installed, and `{"op":"shutdown"}` plays the
//! role SIGTERM would. On shutdown the daemon stops accepting connections
//! and new requests, closes the queue, lets the workers drain every queued
//! job (each still gets its response), and joins all threads before
//! returning from [`Server::run`].

use crate::cache::{cache_key, cache_key_parts, fnv1a, CacheKey, CachedSolve, LruCache};
use crate::metrics::ServeMetrics;
use crate::proto::{
    batch_response_to_json, canonical_json, error_to_json, fresh_span_id, fresh_trace_id,
    overloaded_to_json, parse_request, value_to_json, BatchRequest, ErrorKind, HelloResponse,
    ProtoError, Request, Response, SolveRequest, SolveResponse,
};
use crate::queue::{BoundedQueue, QueueFull};
use mosc_analyze::json::Value;
use mosc_core::{BatchVariant, KernelDelta, SolveOptions, SolverKind};
use mosc_obs::{
    bucket_upper, FlightKind, FlightRecorder, TraceContext, TraceSnapshot, LOG_BUCKETS,
};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

pub use crate::proto::ServeStats;

/// How long a blocked reader waits before re-checking the shutdown flag.
/// This bounds the drain latency contributed by idle connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// Which connection-handling front end drives the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// One reader thread per connection (the original front end). Simple
    /// and fine for tens of clients; each connection costs a thread.
    #[default]
    Threads,
    /// A single nonblocking I/O thread owning every socket (epoll on
    /// Linux, poll(2) elsewhere or with the `poll-backend` feature).
    /// Holds tens of thousands of connections; bit-compatible with
    /// [`Frontend::Threads`] on the wire.
    Evloop,
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Self::Threads),
            "evloop" => Ok(Self::Evloop),
            other => Err(format!("unknown frontend '{other}' (expected 'threads' or 'evloop')")),
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Threads => "threads",
            Self::Evloop => "evloop",
        })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads solving queued requests (`0` = all available cores).
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `overloaded`.
    pub queue_capacity: usize,
    /// LRU solution-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Structured JSONL access log path (`None` disables it). The file is
    /// truncated at bind time: one run, one log.
    pub access_log: Option<String>,
    /// Requests whose total latency reaches this threshold get their solver
    /// span tree attached to the access-log line (needs the `mosc-obs`
    /// recorder enabled for the spans to exist).
    pub slow_threshold: Duration,
    /// Windowed timeline JSONL path (`None` disables it). Every completed
    /// request lands in a [`mosc_obs::Timeline`] window; closed windows are
    /// appended as `{"type":"timeline",...}` lines. Unlike the latency
    /// histograms this is not gated on the `mosc-obs` recorder — the
    /// timeline is explicitly opted into by setting the path.
    pub timeline: Option<String>,
    /// Width of one timeline window.
    pub timeline_window: Duration,
    /// Which connection-handling front end to run.
    pub frontend: Frontend,
    /// Close connections that have been idle (no bytes received, no
    /// responses pending) for this long. `None` keeps them forever — the
    /// historical behavior, and the default.
    pub idle_timeout: Option<Duration>,
    /// Flight-recorder dump path (`None` disables the recorder entirely).
    /// When set, every request milestone lands in a fixed-size in-memory
    /// ring, and each anomaly — deadline exceeded, queue saturation, a
    /// request over [`Self::slow_threshold`], a worker panic — snapshots
    /// the ring into one `{"type":"flight_dump"}` JSONL line here. The
    /// file is truncated at bind time, like the access log.
    pub flight_dump: Option<String>,
    /// Flight-recorder ring capacity in entries (rounded up to a power of
    /// two; ignored unless [`Self::flight_dump`] is set).
    pub flight_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 128,
            default_deadline: None,
            access_log: None,
            slow_threshold: Duration::from_millis(100),
            timeline: None,
            timeline_window: Duration::from_secs(1),
            frontend: Frontend::Threads,
            idle_timeout: None,
            flight_dump: None,
            flight_capacity: mosc_obs::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Fluent configuration for a [`Server`]: the blessed construction API.
///
/// ```no_run
/// use mosc_serve::{Frontend, Server};
/// use std::time::Duration;
///
/// let server = Server::builder()
///     .addr("127.0.0.1:0")
///     .frontend(Frontend::Evloop)
///     .workers(4)
///     .queue_capacity(256)
///     .cache_capacity(1024)
///     .default_deadline(Duration::from_secs(5))
///     .idle_timeout(Duration::from_secs(300))
///     .bind()
///     .expect("bind");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServeBuilder {
    opts: ServeOptions,
}

impl ServeBuilder {
    /// Starts from [`ServeOptions::default`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.opts.addr = addr.into();
        self
    }

    /// Worker threads solving queued requests (`0` = all available cores).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.workers = workers;
        self
    }

    /// Bounded queue capacity; pushes beyond it answer `overloaded`.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.opts.queue_capacity = capacity;
        self
    }

    /// LRU solution-cache capacity (`0` disables caching).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.opts.cache_capacity = capacity;
        self
    }

    /// Deadline applied to requests that do not carry their own.
    #[must_use]
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.opts.default_deadline = Some(deadline);
        self
    }

    /// Structured JSONL access-log sink (truncated at bind: one run, one
    /// log).
    #[must_use]
    pub fn access_log(mut self, path: impl Into<String>) -> Self {
        self.opts.access_log = Some(path.into());
        self
    }

    /// Requests at least this slow get their span tree attached to the
    /// access-log line.
    #[must_use]
    pub fn slow_threshold(mut self, threshold: Duration) -> Self {
        self.opts.slow_threshold = threshold;
        self
    }

    /// Windowed timeline JSONL sink.
    #[must_use]
    pub fn timeline(mut self, path: impl Into<String>) -> Self {
        self.opts.timeline = Some(path.into());
        self
    }

    /// Width of one timeline window.
    #[must_use]
    pub fn timeline_window(mut self, window: Duration) -> Self {
        self.opts.timeline_window = window;
        self
    }

    /// Which connection-handling front end to run.
    #[must_use]
    pub fn frontend(mut self, frontend: Frontend) -> Self {
        self.opts.frontend = frontend;
        self
    }

    /// Close connections idle (no bytes, no pending responses) this long.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.opts.idle_timeout = Some(timeout);
        self
    }

    /// Flight-recorder dump sink: anomalies snapshot the milestone ring
    /// into `{"type":"flight_dump"}` JSONL lines at this path.
    #[must_use]
    pub fn flight_dump(mut self, path: impl Into<String>) -> Self {
        self.opts.flight_dump = Some(path.into());
        self
    }

    /// Flight-recorder ring capacity in entries (rounded up to a power of
    /// two).
    #[must_use]
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.opts.flight_capacity = capacity;
        self
    }

    /// The assembled options (the builder's backing store), for callers
    /// that need to inspect or persist the configuration.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Binds the listen socket and creates the configured sinks; the
    /// server only starts serving on [`Server::run`].
    ///
    /// # Errors
    /// I/O errors from binding, inspecting the socket, or creating the
    /// access-log/timeline files.
    pub fn bind(self) -> std::io::Result<Server> {
        Server::bind_with(self.opts)
    }
}

/// The distributed-tracing identity of one server-side unit of work: which
/// trace it belongs to, the span the server minted for it, and the span it
/// descends from (`0` = a root the server originated itself). Every access
/// log entry carries all three, so `mosc-cli trace` can join client, queue
/// and solver views of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TraceIds {
    pub(crate) trace_id: u128,
    pub(crate) span_id: u64,
    pub(crate) parent_id: u64,
}

impl TraceIds {
    /// Continues a wire trace context (the v2 `trace` member) under a fresh
    /// server span, or originates a new root trace when the client sent
    /// none — either way every request ends up traceable.
    fn continue_from(wire: Option<&crate::proto::TraceContext>) -> Self {
        match wire {
            Some(t) => {
                Self { trace_id: t.trace_id, span_id: fresh_span_id(), parent_id: t.parent_id }
            }
            None => Self { trace_id: fresh_trace_id(), span_id: fresh_span_id(), parent_id: 0 },
        }
    }

    /// A child span of `self` in the same trace (batch variants hang off
    /// their dispatch span this way).
    fn child(self) -> Self {
        Self { trace_id: self.trace_id, span_id: fresh_span_id(), parent_id: self.span_id }
    }
}

/// One queued unit of work, stamped at receipt and at enqueue.
pub(crate) struct Job {
    payload: Payload,
    conn: u64,
    /// First per-connection sequence number of this line. A batch line
    /// consumes one seq per variant (variant `i` logs as `seq + i`), so the
    /// per-connection sequence stays collision-free for the M093 lint.
    seq: u64,
    writer: ConnWriter,
    deadline_at: Option<Instant>,
    t_recv: Instant,
    t_enqueue: Instant,
    /// The server span for this line (the dispatch span for a batch, whose
    /// variants each get a child span).
    trace: TraceIds,
}

/// What a queued line asks for.
enum Payload {
    /// One solver on one platform, keyed for the solution cache.
    Single(SolveRequest, CacheKey),
    /// Many variants of one shared platform. The second field is the
    /// canonical platform serialization — the interning-registry preimage —
    /// computed once on the reader thread.
    Batch(BatchRequest, String),
}

/// Where a connection's response lines go. The worker pool is front-end
/// agnostic: the threaded front end hands it a mutex-serialized socket
/// clone, the event loop a handle into its completion outbox. Either way
/// each response is framed as exactly one line and lands unfragmented.
#[derive(Clone)]
pub(crate) enum ConnWriter {
    /// Threaded front end: write directly; the mutex keeps reader-thread
    /// answers and worker answers from interleaving bytes.
    Direct(Arc<Mutex<TcpStream>>),
    /// Event-loop front end: queue the framed line for the I/O thread
    /// (which owns the socket) and wake it.
    #[cfg(unix)]
    Event {
        /// Which connection the line answers.
        conn: u64,
        /// The event loop's completion outbox.
        outbox: Arc<crate::evloop::Outbox>,
    },
}

impl ConnWriter {
    /// Hands one framed (newline-terminated) response line to the socket.
    /// Write errors mean the client went away; the daemon has nothing
    /// useful to do about it.
    fn write_line(&self, framed: String) {
        match self {
            Self::Direct(stream) => {
                let mut stream = stream.lock().unwrap_or_else(PoisonError::into_inner);
                let _ = stream.write_all(framed.as_bytes());
            }
            #[cfg(unix)]
            Self::Event { conn, outbox } => outbox.push(*conn, framed),
        }
    }
}

/// State shared by the front end (accept loop + readers, or the event
/// loop) and the workers.
pub(crate) struct Shared {
    pub(crate) opts: ServeOptions,
    addr: SocketAddr,
    pub(crate) queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    pub(crate) metrics: ServeMetrics,
    access: Option<Mutex<File>>,
    /// Windowed completion timeline plus its output file; closed windows
    /// are appended as they fill, the in-progress window at drain.
    timeline: Option<(mosc_obs::Timeline, Mutex<File>)>,
    /// Flight recorder plus its dump file: request milestones ring-buffer
    /// in memory, anomalies snapshot the ring as `flight_dump` JSONL lines.
    flight: Option<(FlightRecorder, Mutex<File>)>,
    start: Instant,
    pub(crate) shutdown: AtomicBool,
    /// Connection-id allocator; ids start at 1 so `conn` is never falsy in
    /// log-processing tools.
    pub(crate) conns: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let merged = self.metrics.solve_total();
        let q = |p: f64| merged.quantile(p).map_or(0.0, |s| s * 1e3);
        ServeStats {
            requests: self.metrics.requests.get(),
            responses: self.metrics.responses.get(),
            cache_hits: self.metrics.cache_hits.get(),
            cache_misses: self.metrics.cache_misses.get(),
            cache_evictions: self.metrics.cache_evictions.get(),
            rejected: self.metrics.rejected.get(),
            deadline_exceeded: self.metrics.deadline_exceeded.get(),
            malformed: self.metrics.malformed.get(),
            queue_depth: self.queue.len() as u64,
            queue_peak: self.metrics.queue_peak.get(),
            cache_len: self.lock_cache().len() as u64,
            uptime_s: self.start.elapsed().as_secs_f64(),
            req_per_s: self.metrics.rate.per_sec(),
            p50_ms: q(0.5),
            p90_ms: q(0.9),
            p99_ms: q(0.99),
            p999_ms: q(0.999),
            max_ms: if merged.count > 0 { merged.max * 1e3 } else { 0.0 },
            slow_exemplar: self.metrics.slow_exemplar().map_or(0, |e| e.trace_id),
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured worker-pool size (`0` = all available cores).
    fn worker_count(&self) -> usize {
        if self.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.opts.workers
        }
    }

    /// Flags shutdown and wakes the accept loop with a throwaway
    /// connection (the pure-std replacement for signalling the thread).
    fn initiate_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A cloneable remote control for a bound server; lets tests and the CLI
/// trigger the same drain-then-exit path as the wire `shutdown` op.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begins drain-then-exit, as if `{"op":"shutdown"}` had arrived.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Current service counters and latency summary.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// A bound (but not yet running) solve service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Starts a fluent configuration; finish with [`ServeBuilder::bind`].
    #[must_use]
    pub fn builder() -> ServeBuilder {
        ServeBuilder::new()
    }

    /// Binds the listen socket from a positional options struct.
    ///
    /// # Errors
    /// I/O errors from binding, inspecting the socket, or creating the
    /// access-log file.
    #[deprecated(note = "construct through `Server::builder()` (ServeBuilder); \
                the positional ServeOptions surface is frozen")]
    pub fn bind(opts: ServeOptions) -> std::io::Result<Self> {
        Self::bind_with(opts)
    }

    /// Binds the listen socket and (when configured) creates the access
    /// log. The server only starts serving on [`run`](Self::run).
    fn bind_with(opts: ServeOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let access = match &opts.access_log {
            None => None,
            Some(path) => Some(Mutex::new(File::create(path)?)),
        };
        let timeline = match &opts.timeline {
            None => None,
            Some(path) => Some((
                mosc_obs::Timeline::new(opts.timeline_window.as_secs_f64()),
                Mutex::new(File::create(path)?),
            )),
        };
        let flight = match &opts.flight_dump {
            None => None,
            Some(path) => {
                let recorder = FlightRecorder::new(opts.flight_capacity);
                recorder.enable();
                Some((recorder, Mutex::new(File::create(path)?)))
            }
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(opts.queue_capacity),
            cache: Mutex::new(LruCache::new(opts.cache_capacity)),
            metrics: ServeMetrics::new(),
            access,
            timeline,
            flight,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            conns: AtomicU64::new(0),
            addr,
            opts,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (useful with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control for this server.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: self.shared.clone() }
    }

    /// Serves until a shutdown is requested (wire op or [`ServeHandle`]),
    /// then drains: queued jobs all get responses, every thread is joined,
    /// and the access log (if any) gets its `hist_snapshot` and
    /// `serve_summary` trailer lines.
    ///
    /// # Errors
    /// Fatal accept-loop / event-loop I/O errors only; per-connection
    /// errors are contained to their connection.
    pub fn run(self) -> std::io::Result<()> {
        match self.shared.opts.frontend {
            Frontend::Threads => {
                self.run_threads();
                Ok(())
            }
            #[cfg(unix)]
            Frontend::Evloop => self.run_evloop(),
            #[cfg(not(unix))]
            Frontend::Evloop => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the evloop frontend needs poll(2)/epoll and is unix-only",
            )),
        }
    }

    /// The original front end: blocking accept loop, one reader thread per
    /// connection.
    fn run_threads(self) {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.worker_count() {
                scope.spawn(|| worker_loop(shared));
            }
            for stream in self.listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(|| handle_connection(stream, shared));
            }
            // Drain: no new work, workers finish what is queued, readers
            // notice the flag within READ_POLL and exit.
            shared.queue.close();
        });
        write_access_trailer(shared);
        write_timeline_trailer(shared);
    }

    /// The event-loop front end: one nonblocking I/O thread owns every
    /// socket; the same worker pool runs behind it.
    #[cfg(unix)]
    fn run_evloop(self) -> std::io::Result<()> {
        let shared = &self.shared;
        let result = std::thread::scope(|scope| {
            for _ in 0..shared.worker_count() {
                scope.spawn(|| worker_loop(shared));
            }
            let result = crate::evloop::run(&self.listener, shared);
            // The event loop closes the queue when its drain starts; an
            // early error must still release the blocked workers.
            shared.queue.close();
            result
        });
        write_access_trailer(shared);
        write_timeline_trailer(shared);
        result
    }
}

/// The worker side: pop, enforce the deadline, consult the cache, solve,
/// respond. A panicking solve must not shrink the worker pool for the rest
/// of the process lifetime, so each job runs under `catch_unwind`; a panic
/// is recorded as a flight anomaly (with a ring dump) and the worker moves
/// on. The poisoned-mutex consequences are already handled everywhere via
/// `PoisonError::into_inner`.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let t_dequeue = Instant::now();
        shared.metrics.on_queue_depth(shared.queue.len() as u64);
        let wait_us = t_dequeue.saturating_duration_since(job.t_enqueue).as_micros() as u64;
        flight_record(shared, FlightKind::Dequeue, job.trace, wait_us);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job.payload {
                Payload::Single(req, key) => process_job(shared, &job, req, key, t_dequeue),
                Payload::Batch(req, canonical_platform) => {
                    process_batch(shared, &job, req, canonical_platform, t_dequeue);
                }
            }));
        if outcome.is_err() {
            flight_record(shared, FlightKind::Panic, job.trace, 0);
            flight_dump(shared, "panic");
        }
    }
}

/// Everything [`finish`] needs to close out one request: identity, timing
/// anchors, and (for solved requests) the kernel-counter deltas and the
/// captured span tree.
struct Completion<'a> {
    id: &'a str,
    /// `"solve"` for solver requests, else the protocol op (or `"parse"`).
    op: &'a str,
    solver: Option<SolverKind>,
    /// `"ok"`, `"error"` or `"overloaded"`.
    status: &'a str,
    cached: bool,
    /// Connection id and per-connection line sequence number — the join
    /// fields the M093 lint orders the log by.
    conn: u64,
    seq: u64,
    /// Canonical cache key for solve ops (the M082 lint joins hits to
    /// fills on it); `None` for protocol ops.
    key: Option<u64>,
    t_recv: Instant,
    /// Queue-push time; reader-thread answers never queue, so it equals
    /// `t_recv` for them.
    t_enqueue: Instant,
    queue_wait: f64,
    service_start: Instant,
    deadline_at: Option<Instant>,
    kernel: KernelDelta,
    trace: Option<TraceSnapshot>,
    /// The enclosing `solve_batch` request id when this completion is one
    /// variant of a batch (the M110/M111 lints group entries on it);
    /// `None` for single solves and protocol ops.
    batch: Option<&'a str>,
    /// Distributed-trace identity: continued from the client's wire trace
    /// when one arrived, originated by the server otherwise.
    ids: TraceIds,
}

impl<'a> Completion<'a> {
    /// A protocol op or parse error: never queued, no solver attached.
    fn proto(
        id: &'a str,
        op: &'a str,
        status: &'a str,
        t_recv: Instant,
        conn: u64,
        seq: u64,
    ) -> Self {
        Self {
            id,
            op,
            solver: None,
            status,
            cached: false,
            conn,
            seq,
            key: None,
            t_recv,
            t_enqueue: t_recv,
            queue_wait: 0.0,
            service_start: t_recv,
            deadline_at: None,
            kernel: KernelDelta::default(),
            trace: None,
            batch: None,
            ids: TraceIds::continue_from(None),
        }
    }
}

/// Proof that [`record_completion`] ran for a request. The response
/// writers ([`respond`], [`respond_proto`]) each consume one, so
/// "stamp the histograms/timeline/access log, **then** write the bytes" is
/// the only order the code can express. The guarantee this buys: a client
/// that reads its response and immediately scrapes `stats`, `metrics`, or
/// the access log is certain to see its own request already recorded —
/// including the reader-thread cache-hit fast path, which used to make
/// that ordering a per-call-site convention rather than a type invariant.
#[must_use = "a completion stamp exists to be spent on the response write"]
struct Stamped(());

/// Records the request's phase latencies into the per-op histograms,
/// appends the access-log line, then writes the response. The single exit
/// path for every request, so no completion can miss a histogram or log
/// entry — and because recording happens *before* the bytes land, a client
/// that reads its response and immediately scrapes `metrics` (or `stats`)
/// is guaranteed to see its own request counted. The phases therefore
/// exclude the socket write itself, which is microseconds against
/// millisecond solves.
fn finish(shared: &Shared, writer: &ConnWriter, line: &str, c: &Completion<'_>) {
    let stamped = record_completion(shared, c, Instant::now());
    if c.solver.is_some() {
        respond(shared, writer, c.id, line, stamped);
    } else {
        respond_proto(shared, writer, line, stamped);
    }
}

/// The recording half of [`finish`]: histograms, timeline and access log
/// for one completion, without writing any response bytes. The batch path
/// calls this once per variant and then frames a single response line.
/// Returns the [`Stamped`] receipt the response writers demand.
fn record_completion(shared: &Shared, c: &Completion<'_>, done: Instant) -> Stamped {
    let service = done.saturating_duration_since(c.service_start).as_secs_f64();
    let total = done.saturating_duration_since(c.t_recv).as_secs_f64();
    match c.solver {
        Some(kind) => {
            shared.metrics.record_solve(kind, c.queue_wait, service, total, c.ids.trace_id);
        }
        None => shared.metrics.record_proto(total),
    }
    let total_us = (total * 1e6) as u64;
    flight_record(shared, FlightKind::Done, c.ids, total_us);
    if total >= shared.opts.slow_threshold.as_secs_f64() {
        flight_record(shared, FlightKind::Slow, c.ids, total_us);
        flight_dump(shared, "slow");
    }
    record_timeline(shared, total, c.cached);
    log_access(shared, c, done, service, total);
    Stamped(())
}

/// Lands one completion in the windowed timeline (when configured) and
/// appends any windows that closed. Writing here, on the completion path,
/// keeps the output ordered without a sampler thread; an idle server
/// simply flushes its backlog of empty windows on the next request.
fn record_timeline(shared: &Shared, total_s: f64, cached: bool) {
    let Some((timeline, file)) = &shared.timeline else { return };
    timeline.record(total_s, cached);
    timeline.note_depth(shared.queue.len() as u64);
    let closed = timeline.drain_closed();
    if !closed.is_empty() {
        let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(mosc_obs::Timeline::render_jsonl(&closed).as_bytes());
    }
}

/// Flushes the in-progress timeline window at drain.
fn write_timeline_trailer(shared: &Shared) {
    let Some((timeline, file)) = &shared.timeline else { return };
    let remaining = timeline.finish();
    if !remaining.is_empty() {
        let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(mosc_obs::Timeline::render_jsonl(&remaining).as_bytes());
    }
}

/// Lands one milestone in the flight ring (no-op without `--flight-dump`).
fn flight_record(shared: &Shared, kind: FlightKind, ids: TraceIds, value: u64) {
    if let Some((recorder, _)) = &shared.flight {
        recorder.record(kind, ids.trace_id, ids.span_id, value);
    }
}

/// Snapshots the flight ring into one `{"type":"flight_dump"}` JSONL line —
/// the "what led up to this" record an anomaly leaves behind. Torn entries
/// (overwritten mid-copy) are counted, never emitted, so every entry in the
/// dump is internally consistent; the M123 lint checks the accounting.
fn flight_dump(shared: &Shared, reason: &str) {
    let Some((recorder, file)) = &shared.flight else { return };
    let snap = recorder.snapshot();
    let num = Value::Number;
    let entries: Vec<Value> = snap
        .entries
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("seq".to_owned(), num(e.seq as f64)),
                ("t_us".to_owned(), num(e.t_us as f64)),
                (
                    "kind".to_owned(),
                    e.kind.map_or(Value::Null, |k| Value::String(k.as_str().to_owned())),
                ),
                ("trace_id".to_owned(), Value::String(format!("{:032x}", e.trace_id))),
                ("span_id".to_owned(), Value::String(format!("{:016x}", e.span_id))),
                ("value".to_owned(), num(e.value as f64)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("type".to_owned(), Value::String("flight_dump".to_owned())),
        ("reason".to_owned(), Value::String(reason.to_owned())),
        ("t_s".to_owned(), num(shared.start.elapsed().as_secs_f64())),
        ("head".to_owned(), num(snap.head as f64)),
        ("capacity".to_owned(), num(snap.capacity as f64)),
        ("dropped".to_owned(), num(snap.dropped as f64)),
        ("torn".to_owned(), num(snap.torn as f64)),
        ("entries".to_owned(), Value::Array(entries)),
    ]);
    let line = value_to_json(&doc);
    let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(file, "{line}");
}

/// Most spans one access-log line may carry; anything beyond is dropped
/// and accounted in `spans_truncated`.
const MAX_ACCESS_SPANS: usize = 256;

/// Appends one `{"type":"access",...}` JSONL line for a completed request.
fn log_access(shared: &Shared, c: &Completion<'_>, done: Instant, service: f64, total: f64) {
    let Some(access) = &shared.access else { return };
    let num = Value::Number;
    let mut members: Vec<(String, Value)> = vec![
        ("type".to_owned(), Value::String("access".to_owned())),
        ("t_s".to_owned(), num(shared.start.elapsed().as_secs_f64())),
        ("id".to_owned(), Value::String(c.id.to_owned())),
        ("op".to_owned(), Value::String(c.op.to_owned())),
        ("solver".to_owned(), c.solver.map_or(Value::Null, |k| Value::String(k.id().to_owned()))),
        ("status".to_owned(), Value::String(c.status.to_owned())),
        ("cached".to_owned(), Value::Bool(c.cached)),
        ("queue_wait_s".to_owned(), num(c.queue_wait)),
        ("service_s".to_owned(), num(service)),
        ("total_s".to_owned(), num(total)),
        (
            "deadline_slack_s".to_owned(),
            c.deadline_at.map_or(Value::Null, |at| num(signed_slack(at, done))),
        ),
        ("expm_calls".to_owned(), num(c.kernel.expm_calls as f64)),
        ("period_map_matmuls".to_owned(), num(c.kernel.period_map_matmuls as f64)),
        ("steady_state_calls".to_owned(), num(c.kernel.steady_state_calls as f64)),
        ("linalg_matmuls".to_owned(), num(c.kernel.linalg_matmuls as f64)),
        ("eigen_calls".to_owned(), num(c.kernel.eigen_calls as f64)),
        ("registry_hits".to_owned(), num(c.kernel.registry_hits as f64)),
        ("registry_misses".to_owned(), num(c.kernel.registry_misses as f64)),
        ("conn".to_owned(), num(c.conn as f64)),
        ("seq".to_owned(), num(c.seq as f64)),
        // Distributed-trace identity, hex like the wire form: JSON numbers
        // are f64 and cannot carry 64/128 bits losslessly. A null parent
        // marks a server-originated root (the client sent no trace).
        ("trace_id".to_owned(), Value::String(format!("{:032x}", c.ids.trace_id))),
        ("span_id".to_owned(), Value::String(format!("{:016x}", c.ids.span_id))),
        (
            "parent_id".to_owned(),
            if c.ids.parent_id == 0 {
                Value::Null
            } else {
                Value::String(format!("{:016x}", c.ids.parent_id))
            },
        ),
        // The cache key travels as a hex string: JSON numbers are f64 and
        // cannot carry 64 bits losslessly.
        ("key".to_owned(), c.key.map_or(Value::Null, |k| Value::String(format!("{k:016x}")))),
        ("t_recv_s".to_owned(), num(since_start(shared, c.t_recv))),
        ("t_enqueue_s".to_owned(), num(since_start(shared, c.t_enqueue))),
        ("t_dequeue_s".to_owned(), num(since_start(shared, c.service_start))),
        ("t_done_s".to_owned(), num(since_start(shared, done))),
    ];
    if let Some(batch) = c.batch {
        members.push(("batch".to_owned(), Value::String(batch.to_owned())));
    }
    if total >= shared.opts.slow_threshold.as_secs_f64() {
        if let Some(trace) = c.trace.as_ref().filter(|t| !t.is_empty()) {
            // A pathological solve can open thousands of distinct span
            // paths; cap the attachment so one bad request cannot balloon
            // the log line, and say how much was cut (the M091 span lint
            // skips containment checks on truncated entries).
            let spans: Vec<Value> = trace
                .spans
                .iter()
                .take(MAX_ACCESS_SPANS)
                .map(|s| {
                    Value::Object(vec![
                        ("path".to_owned(), Value::String(s.path.clone())),
                        ("depth".to_owned(), num(s.depth as f64)),
                        ("calls".to_owned(), num(s.calls as f64)),
                        ("total_s".to_owned(), num(s.total.as_secs_f64())),
                        ("self_s".to_owned(), num(s.self_time.as_secs_f64())),
                    ])
                })
                .collect();
            members.push(("spans".to_owned(), Value::Array(spans)));
            if trace.spans.len() > MAX_ACCESS_SPANS {
                let cut = trace.spans.len() - MAX_ACCESS_SPANS;
                members.push(("spans_truncated".to_owned(), num(cut as f64)));
            }
        }
    }
    write_access_line(access, &Value::Object(members));
}

/// Seconds since server start on the one monotone clock every lifecycle
/// timestamp shares — the clock the M090/M092 lints assume.
fn since_start(shared: &Shared, at: Instant) -> f64 {
    at.saturating_duration_since(shared.start).as_secs_f64()
}

/// Seconds from `now` until `at`: positive when the deadline is still
/// ahead, negative when it has already passed.
fn signed_slack(at: Instant, now: Instant) -> f64 {
    match at.checked_duration_since(now) {
        Some(left) => left.as_secs_f64(),
        None => -now.saturating_duration_since(at).as_secs_f64(),
    }
}

/// One serialized line into the access log. Write errors (disk full, log
/// on a vanished mount) must not take the request path down with them.
fn write_access_line(access: &Mutex<File>, doc: &Value) {
    let line = value_to_json(doc);
    let mut file = access.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = writeln!(file, "{line}");
}

/// Drain-time access-log trailer: one `hist_snapshot` line per non-empty
/// latency histogram (elided empty buckets, `+Inf` last) and one
/// `serve_summary` line with the final counters — the inputs to the M072
/// and M073 lints.
fn write_access_trailer(shared: &Shared) {
    let Some(access) = &shared.access else { return };
    let num = Value::Number;
    for (name, snap, exemplars) in shared.metrics.latency_snapshots() {
        let cumulative = snap.cumulative();
        let mut buckets = Vec::new();
        let mut prev = 0u64;
        for (i, &(le, cum)) in cumulative.iter().enumerate() {
            let last = i == cumulative.len() - 1;
            if cum == prev && !last {
                continue;
            }
            prev = cum;
            let le_value = if last { Value::String("+Inf".to_owned()) } else { Value::Number(le) };
            buckets.push(Value::Object(vec![
                ("le".to_owned(), le_value),
                ("cum".to_owned(), num(cum as f64)),
            ]));
        }
        let mut doc = vec![
            ("type".to_owned(), Value::String("hist_snapshot".to_owned())),
            ("name".to_owned(), Value::String(name.to_owned())),
            ("count".to_owned(), num(snap.count as f64)),
            ("sum".to_owned(), num(snap.sum)),
            ("buckets".to_owned(), Value::Array(buckets)),
        ];
        if !exemplars.is_empty() {
            let list: Vec<Value> = exemplars
                .iter()
                .map(|&(i, e)| {
                    let le = if i == LOG_BUCKETS - 1 {
                        Value::String("+Inf".to_owned())
                    } else {
                        Value::Number(bucket_upper(i))
                    };
                    Value::Object(vec![
                        ("le".to_owned(), le),
                        ("trace_id".to_owned(), Value::String(format!("{:032x}", e.trace_id))),
                        ("value".to_owned(), num(e.value)),
                    ])
                })
                .collect();
            doc.push(("exemplars".to_owned(), Value::Array(list)));
        }
        write_access_line(access, &Value::Object(doc));
    }
    let s = shared.stats();
    let doc = Value::Object(vec![
        ("type".to_owned(), Value::String("serve_summary".to_owned())),
        ("requests".to_owned(), num(s.requests as f64)),
        ("responses".to_owned(), num(s.responses as f64)),
        ("cache_hits".to_owned(), num(s.cache_hits as f64)),
        ("cache_misses".to_owned(), num(s.cache_misses as f64)),
        ("cache_evictions".to_owned(), num(s.cache_evictions as f64)),
        ("rejected".to_owned(), num(s.rejected as f64)),
        ("deadline_exceeded".to_owned(), num(s.deadline_exceeded as f64)),
        ("malformed".to_owned(), num(s.malformed as f64)),
        ("queue_peak".to_owned(), num(s.queue_peak as f64)),
        ("uptime_s".to_owned(), num(s.uptime_s)),
    ]);
    write_access_line(access, &doc);
}

fn process_job(shared: &Shared, job: &Job, req: &SolveRequest, key: &CacheKey, t_dequeue: Instant) {
    let id = &req.id;
    let queue_wait = t_dequeue.saturating_duration_since(job.t_enqueue).as_secs_f64();
    let base = Completion {
        id,
        op: "solve",
        solver: Some(req.kind),
        status: "ok",
        cached: false,
        conn: job.conn,
        seq: job.seq,
        key: Some(key.hash),
        t_recv: job.t_recv,
        t_enqueue: job.t_enqueue,
        queue_wait,
        service_start: t_dequeue,
        deadline_at: job.deadline_at,
        kernel: KernelDelta::default(),
        trace: None,
        batch: None,
        ids: job.trace,
    };
    // Deadline may already have burned off while queued.
    let remaining = match job.deadline_at {
        None => None,
        Some(at) => match at.checked_duration_since(Instant::now()) {
            Some(left) if left > Duration::ZERO => Some(left),
            _ => {
                shared.metrics.on_deadline_exceeded();
                flight_record(shared, FlightKind::Deadline, job.trace, 0);
                flight_dump(shared, "deadline");
                finish(
                    shared,
                    &job.writer,
                    &error_to_json(id, "deadline", "deadline expired while queued"),
                    &Completion { status: "error", ..base },
                );
                return;
            }
        },
    };
    // A duplicate may have filled the cache while this job waited.
    if let Some(hit) = shared.lock_cache().get(key) {
        shared.metrics.on_cache_hit();
        let line = render_ok(req, &hit, true);
        finish(shared, &job.writer, &line, &Completion { cached: true, ..base });
        return;
    }
    shared.metrics.on_cache_miss();

    let doc = Value::Object(vec![("platform".to_owned(), req.platform.clone())]);
    let platform = match mosc_analyze::platform_from_doc(&doc) {
        Ok(p) => p,
        Err(e) => {
            finish(
                shared,
                &job.writer,
                &error_to_json(id, "usage", &e.to_string()),
                &Completion { status: "error", ..base },
            );
            return;
        }
    };
    let opts = SolveOptions { deadline: remaining, ..req.options };
    // The context hands this request's identity across the solve: the
    // solver's root span tree and counter increments recorded on this
    // thread land in the snapshot attached to the access-log line.
    let trace = TraceContext::new();
    let result = trace.observe(|| mosc_core::solve(req.kind, &platform, &opts));
    match result {
        Ok(report) => {
            // The deadline must hold when the response is written, not just
            // at dequeue: the polynomial solvers run to completion by
            // contract, so a slow solve can sail past it. Answer the
            // deadline error the client asked for, and do NOT cache the
            // late result — a cache fill logged as an error would leave
            // later hits' keys unannounced for the M082 lint.
            if job.deadline_at.is_some_and(|at| Instant::now() > at) {
                shared.metrics.on_deadline_exceeded();
                let late_us = Instant::now()
                    .saturating_duration_since(job.deadline_at.unwrap_or_else(Instant::now))
                    .as_micros() as u64;
                flight_record(shared, FlightKind::Deadline, job.trace, late_us);
                flight_dump(shared, "deadline");
                finish(
                    shared,
                    &job.writer,
                    &error_to_json(id, "deadline", "deadline expired during solve"),
                    &Completion {
                        status: "error",
                        kernel: report.kernel,
                        trace: Some(trace.snapshot()),
                        ..base
                    },
                );
                return;
            }
            let cached = CachedSolve {
                solver: req.kind,
                throughput: report.solution.throughput,
                peak_c: report.solution.peak_c(&platform),
                feasible: report.solution.feasible,
                m: report.solution.m,
                wall_ms: report.wall.as_secs_f64() * 1e3,
                stats: report.stats,
                schedule_text: mosc_sched::text::to_text(&report.solution.schedule),
            };
            let line = render_ok(req, &cached, false);
            if shared.lock_cache().insert(key, cached) {
                shared.metrics.on_cache_eviction();
            }
            finish(
                shared,
                &job.writer,
                &line,
                &Completion { kernel: report.kernel, trace: Some(trace.snapshot()), ..base },
            );
        }
        Err(e) => {
            let kind = ErrorKind::of_algo(&e);
            if kind == ErrorKind::Deadline {
                shared.metrics.on_deadline_exceeded();
            }
            finish(
                shared,
                &job.writer,
                &error_to_json(id, kind.id(), &e.to_string()),
                &Completion { status: "error", trace: Some(trace.snapshot()), ..base },
            );
        }
    }
}

/// One variant's outcome inside a batch: the rendered result object plus
/// what its access-log entry must say.
struct VariantOutcome {
    line: String,
    status: &'static str,
    cached: bool,
    kernel: KernelDelta,
}

/// The worker side of `solve_batch`: resolve the shared platform once
/// through the interning registry, consult the solution cache per variant,
/// fan the misses over [`mosc_core::solve_batch`], fill the cache, record
/// one access entry per variant (op `"solve"`, ids `"<batch id>#<i>"`,
/// sequence numbers `job.seq + i`), and answer with a single framed line.
fn process_batch(
    shared: &Shared,
    job: &Job,
    req: &BatchRequest,
    canonical_platform: &str,
    t_dequeue: Instant,
) {
    let queue_wait = t_dequeue.saturating_duration_since(job.t_enqueue).as_secs_f64();
    let bid = &req.id;
    // Resolve the platform once. Eigendecomposition work across the resolve
    // is measured so the access log can prove a warm batch did none — the
    // M110 lint joins `registry_hits > 0` against `eigen_calls`.
    let eigs = || mosc_obs::counter_value("eigen.calls").unwrap_or(0);
    let eigs_before = eigs();
    let resolved = mosc_core::registry::intern_with(canonical_platform, || {
        let doc = Value::Object(vec![("platform".to_owned(), req.platform.clone())]);
        mosc_analyze::platform_from_doc(&doc)
    });
    let resolve_eigs = eigs().saturating_sub(eigs_before);
    let (platform, warm) = match resolved {
        Ok(resolved) => resolved,
        Err(e) => {
            // Every variant shares the broken platform: one error line for
            // the whole batch, logged under the batch's first seq.
            let c = Completion {
                t_enqueue: job.t_enqueue,
                queue_wait,
                service_start: t_dequeue,
                batch: Some(bid),
                ids: job.trace,
                ..Completion::proto(bid, "solve_batch", "error", job.t_recv, job.conn, job.seq)
            };
            let stamped = record_completion(shared, &c, Instant::now());
            respond(
                shared,
                &job.writer,
                bid,
                &error_to_json(bid, "usage", &e.to_string()),
                stamped,
            );
            return;
        }
    };
    let ids: Vec<String> = (0..req.variants.len()).map(|i| format!("{bid}#{i}")).collect();
    let keys: Vec<CacheKey> = req
        .variants
        .iter()
        .map(|v| cache_key_parts(canonical_platform, v.kind, &v.options))
        .collect();
    let mut outcomes: Vec<Option<VariantOutcome>> = Vec::with_capacity(req.variants.len());
    let mut misses: Vec<usize> = Vec::new();
    for (i, v) in req.variants.iter().enumerate() {
        if let Some(hit) = shared.lock_cache().get(&keys[i]) {
            shared.metrics.on_cache_hit();
            outcomes.push(Some(VariantOutcome {
                line: render_variant_ok(&ids[i], v.want_schedule, &hit, true),
                status: "ok",
                cached: true,
                kernel: KernelDelta::default(),
            }));
        } else {
            shared.metrics.on_cache_miss();
            misses.push(i);
            outcomes.push(None);
        }
    }
    let variants: Vec<BatchVariant> = misses
        .iter()
        .map(|&i| BatchVariant { kind: req.variants[i].kind, options: req.variants[i].options })
        .collect();
    let results = mosc_core::solve_batch(&platform, &variants, 0);
    for (&i, result) in misses.iter().zip(results) {
        let v = &req.variants[i];
        outcomes[i] = Some(match result {
            Ok(report) => {
                let cached = CachedSolve {
                    solver: v.kind,
                    throughput: report.solution.throughput,
                    peak_c: report.solution.peak_c(&platform),
                    feasible: report.solution.feasible,
                    m: report.solution.m,
                    wall_ms: report.wall.as_secs_f64() * 1e3,
                    stats: report.stats,
                    schedule_text: mosc_sched::text::to_text(&report.solution.schedule),
                };
                let line = render_variant_ok(&ids[i], v.want_schedule, &cached, false);
                if shared.lock_cache().insert(&keys[i], cached) {
                    shared.metrics.on_cache_eviction();
                }
                VariantOutcome { line, status: "ok", cached: false, kernel: report.kernel }
            }
            Err(e) => {
                let kind = ErrorKind::of_algo(&e);
                if kind == ErrorKind::Deadline {
                    shared.metrics.on_deadline_exceeded();
                }
                VariantOutcome {
                    line: error_to_json(&ids[i], kind.id(), &e.to_string()),
                    status: "error",
                    cached: false,
                    kernel: KernelDelta::default(),
                }
            }
        });
    }
    // Record every variant, then answer once. Registry attribution is
    // deterministic: each variant reports the batch's resolve outcome, and
    // the resolve's eigendecomposition work lands on the first variant.
    let done = Instant::now();
    let mut lines = Vec::with_capacity(outcomes.len());
    let mut stamped = None;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let Some(mut o) = outcome else { continue };
        o.kernel.registry_hits = u64::from(warm);
        o.kernel.registry_misses = u64::from(!warm);
        if i == 0 {
            o.kernel.eigen_calls = o.kernel.eigen_calls.saturating_add(resolve_eigs);
        }
        let c = Completion {
            id: &ids[i],
            op: "solve",
            solver: Some(req.variants[i].kind),
            status: o.status,
            cached: o.cached,
            conn: job.conn,
            seq: job.seq + i as u64,
            key: Some(keys[i].hash),
            t_recv: job.t_recv,
            t_enqueue: job.t_enqueue,
            queue_wait,
            service_start: t_dequeue,
            deadline_at: None,
            kernel: o.kernel,
            trace: None,
            batch: Some(bid),
            // Every variant is a child span of the batch's dispatch span:
            // one shared trace id, one shared parent, a fresh span each —
            // the containment the M122 lint asserts.
            ids: job.trace.child(),
        };
        stamped = Some(record_completion(shared, &c, done));
        lines.push(o.line);
    }
    // The parser guarantees at least one variant, so at least one stamp.
    let Some(stamped) = stamped else { return };
    respond(shared, &job.writer, bid, &batch_response_to_json(bid, warm, &lines), stamped);
}

/// Renders an ok response for `req` from a (fresh or cached) solve.
fn render_ok(req: &SolveRequest, solve: &CachedSolve, cached: bool) -> String {
    render_variant_ok(&req.id, req.want_schedule, solve, cached)
}

/// [`render_ok`] with the identity split out: the batch path answers each
/// variant under a derived id (`"<batch id>#<i>"`).
fn render_variant_ok(id: &str, want_schedule: bool, solve: &CachedSolve, cached: bool) -> String {
    SolveResponse {
        id: id.to_owned(),
        solver: solve.solver,
        throughput: solve.throughput,
        peak_c: solve.peak_c,
        feasible: solve.feasible,
        m: solve.m,
        wall_ms: solve.wall_ms,
        cached,
        stats: solve.stats,
        schedule: want_schedule.then(|| solve.schedule_text.clone()),
    }
    .to_json()
}

/// Writes one solve-response line: response metrics plus the
/// `serve.response` event the M062 lint pairs against `serve.request`.
/// Demands the caller's [`Stamped`] receipt: no response without its
/// completion recorded first.
fn respond(shared: &Shared, writer: &ConnWriter, id: &str, line: &str, stamped: Stamped) {
    respond_proto(shared, writer, line, stamped);
    mosc_obs::event("serve.response", &[("id", id_hash(id).into())]);
}

/// Writes one response line and records the response metrics, without the
/// request/response event pairing — protocol ops (ping/stats/metrics/
/// shutdown) and parse errors answer lines that no `serve.request` event
/// announced. The [`Stamped`] receipt proves the completion was recorded
/// before any byte lands.
// Taking `Stamped` by value (not reference) is the whole point of the
// receipt: a moved-in token cannot be spent on two response writes.
#[allow(clippy::needless_pass_by_value)]
fn respond_proto(shared: &Shared, writer: &ConnWriter, line: &str, stamped: Stamped) {
    let Stamped(()) = stamped; // spent: the record precedes the write.
                               // Count before writing: the moment the bytes land, a client may read
                               // them and query `stats`, and the response it just received must
                               // already be in the counter.
    shared.metrics.on_response();
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    writer.write_line(framed);
}

/// 32-bit id hash for obs events: event fields travel through JSON numbers
/// (f64), so a full 64-bit hash would not survive the round trip.
fn id_hash(id: &str) -> u64 {
    fnv1a(id.as_bytes()) & 0xFFFF_FFFF
}

/// The reader side of the threaded front end: one thread per connection,
/// line-oriented, polling the shutdown flag between reads.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single small writes; Nagle + delayed ACK would add tens
    // of milliseconds of latency per request on an otherwise idle link.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = ConnWriter::Direct(Arc::new(Mutex::new(write_half)));
    let conn = shared.conns.fetch_add(1, Ordering::Relaxed) + 1;
    let mut seq: u64 = 0;
    let mut last_activity = Instant::now();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed its write half.
            Ok(_) => {
                let t_recv = Instant::now();
                last_activity = t_recv;
                let full = std::mem::take(&mut line);
                let trimmed = full.trim();
                if !trimmed.is_empty() {
                    // A line consumes one seq per logged completion — one
                    // for most requests, one per variant for a batch.
                    seq += handle_line(trimmed, &writer, shared, t_recv, conn, seq);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeout with a partial line already buffered in `line`:
                // keep accumulating on the next pass — unless the idle
                // budget ran out, in which case the connection is dropped.
                if shared.opts.idle_timeout.is_some_and(|limit| last_activity.elapsed() >= limit) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches the `seq`-th request line of connection `conn`, received at
/// `t_recv`. Returns how many sequence numbers the line consumed (one per
/// logged completion: 1 for everything except `solve_batch`, which claims
/// one per variant). Every non-empty line produces **exactly one**
/// response line, now or when a worker completes — the event loop's
/// close-when-drained accounting depends on that invariant.
pub(crate) fn handle_line(
    line: &str,
    writer: &ConnWriter,
    shared: &Shared,
    t_recv: Instant,
    conn: u64,
    seq: u64,
) -> u64 {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(ProtoError { message, id, kind }) => {
            shared.metrics.on_malformed();
            finish(
                shared,
                writer,
                &error_to_json(&id, kind.id(), &message),
                &Completion::proto(&id, "parse", "error", t_recv, conn, seq),
            );
            return 1;
        }
    };
    match request {
        Request::Ping { id } => {
            let pong = Response::Pong { id: id.clone() }.to_json();
            finish(shared, writer, &pong, &Completion::proto(&id, "ping", "ok", t_recv, conn, seq));
            1
        }
        Request::Stats { id } => {
            let line = Response::Stats { id: id.clone(), stats: shared.stats() }.to_json();
            finish(
                shared,
                writer,
                &line,
                &Completion::proto(&id, "stats", "ok", t_recv, conn, seq),
            );
            1
        }
        Request::Metrics { id } => {
            let text = shared.metrics.render_prometheus(
                shared.queue.len() as u64,
                shared.lock_cache().len() as u64,
                shared.start.elapsed().as_secs_f64(),
            );
            let line = Response::Metrics { id: id.clone(), text }.to_json();
            finish(
                shared,
                writer,
                &line,
                &Completion::proto(&id, "metrics", "ok", t_recv, conn, seq),
            );
            1
        }
        Request::Hello { id, max_version } => {
            let (line, status) = match HelloResponse::negotiate(&id, max_version) {
                Ok(hello) => (Response::Hello(hello).to_json(), "ok"),
                Err(message) => (error_to_json(&id, ErrorKind::Usage.id(), &message), "error"),
            };
            finish(
                shared,
                writer,
                &line,
                &Completion::proto(&id, "hello", status, t_recv, conn, seq),
            );
            1
        }
        Request::Shutdown { id } => {
            let bye = Response::ShuttingDown { id: id.clone() }.to_json();
            finish(
                shared,
                writer,
                &bye,
                &Completion::proto(&id, "shutdown", "ok", t_recv, conn, seq),
            );
            shared.initiate_shutdown();
            1
        }
        Request::Solve(req) => {
            shared.metrics.on_request();
            let ids = TraceIds::continue_from(req.trace.as_ref());
            flight_record(shared, FlightKind::Recv, ids, 0);
            let key = cache_key(&req);
            mosc_obs::event(
                "serve.request",
                &[("id", id_hash(&req.id).into()), ("key", (key.hash & 0xFFFF_FFFF).into())],
            );
            // Fast path: answer cache hits from the reader thread, without
            // occupying a queue slot or a worker.
            if let Some(hit) = shared.lock_cache().get(&key) {
                shared.metrics.on_cache_hit();
                let line = render_ok(&req, &hit, true);
                finish(
                    shared,
                    writer,
                    &line,
                    &Completion {
                        id: &req.id,
                        op: "solve",
                        solver: Some(req.kind),
                        status: "ok",
                        cached: true,
                        conn,
                        seq,
                        key: Some(key.hash),
                        t_recv,
                        t_enqueue: t_recv,
                        queue_wait: 0.0,
                        service_start: t_recv,
                        deadline_at: None,
                        kernel: KernelDelta::default(),
                        trace: None,
                        batch: None,
                        ids,
                    },
                );
                return 1;
            }
            let deadline_at =
                req.options.deadline.or(shared.opts.default_deadline).map(|d| Instant::now() + d);
            let job = Job {
                payload: Payload::Single(req, key),
                conn,
                seq,
                writer: writer.clone(),
                deadline_at,
                t_recv,
                t_enqueue: Instant::now(),
                trace: ids,
            };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    shared.metrics.on_queue_depth(depth as u64);
                    flight_record(shared, FlightKind::Enqueue, ids, depth as u64);
                }
                Err(QueueFull(job)) => {
                    shared.metrics.on_rejected();
                    flight_record(shared, FlightKind::Overload, ids, shared.queue.len() as u64);
                    flight_dump(shared, "overload");
                    let Payload::Single(req, key) = &job.payload else { unreachable!() };
                    finish(
                        shared,
                        &job.writer,
                        &overloaded_to_json(&req.id),
                        // A rejected job never queued: its enqueue and
                        // dequeue anchors collapse onto `t_recv` so the
                        // logged pipeline order stays monotone.
                        &Completion {
                            id: &req.id,
                            op: "solve",
                            solver: Some(req.kind),
                            status: "overloaded",
                            cached: false,
                            conn,
                            seq,
                            key: Some(key.hash),
                            t_recv,
                            t_enqueue: t_recv,
                            queue_wait: 0.0,
                            service_start: t_recv,
                            deadline_at: job.deadline_at,
                            kernel: KernelDelta::default(),
                            trace: None,
                            batch: None,
                            ids,
                        },
                    );
                }
            }
            1
        }
        Request::SolveBatch(req) => {
            shared.metrics.on_request();
            let consumed = req.variants.len() as u64;
            // The dispatch span: one server span for the whole batch line,
            // minted here so every variant (a child span solved later by a
            // worker) shares it as parent.
            let ids = TraceIds::continue_from(req.trace.as_ref());
            flight_record(shared, FlightKind::Recv, ids, consumed);
            // The registry preimage doubles as the request-event key, so
            // repeated-platform batch traffic is visible in telemetry.
            let canonical_platform = canonical_json(&req.platform);
            mosc_obs::event(
                "serve.request",
                &[
                    ("id", id_hash(&req.id).into()),
                    ("key", (fnv1a(canonical_platform.as_bytes()) & 0xFFFF_FFFF).into()),
                ],
            );
            let job = Job {
                payload: Payload::Batch(req, canonical_platform),
                conn,
                seq,
                writer: writer.clone(),
                deadline_at: None,
                t_recv,
                t_enqueue: Instant::now(),
                trace: ids,
            };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    shared.metrics.on_queue_depth(depth as u64);
                    flight_record(shared, FlightKind::Enqueue, ids, depth as u64);
                }
                Err(QueueFull(job)) => {
                    shared.metrics.on_rejected();
                    flight_record(shared, FlightKind::Overload, ids, shared.queue.len() as u64);
                    flight_dump(shared, "overload");
                    let Payload::Batch(req, _) = &job.payload else { unreachable!() };
                    let c = Completion {
                        status: "overloaded",
                        batch: Some(&req.id),
                        ids,
                        ..Completion::proto(&req.id, "solve_batch", "overloaded", t_recv, conn, seq)
                    };
                    let stamped = record_completion(shared, &c, Instant::now());
                    respond(shared, &job.writer, &req.id, &overloaded_to_json(&req.id), stamped);
                }
            }
            consumed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the old hand-rolled `format!` serializer: ids with
    /// JSON metacharacters must escape, and every field must round-trip
    /// through the parser.
    #[test]
    fn stats_json_escapes_and_round_trips() {
        let stats = ServeStats {
            requests: 7,
            responses: 7,
            cache_hits: 2,
            cache_misses: 5,
            cache_evictions: 1,
            rejected: 0,
            deadline_exceeded: 0,
            malformed: 3,
            queue_depth: 0,
            queue_peak: 4,
            cache_len: 5,
            uptime_s: 1.25,
            req_per_s: 2.5,
            p50_ms: 10.0,
            p90_ms: 20.0,
            p99_ms: 30.0,
            p999_ms: 31.0,
            max_ms: 31.5,
            slow_exemplar: 0xdead_beef,
        };
        let line = stats.to_json("quote\"and\nnewline");
        let doc = Value::parse(&line).expect("stats line must be valid JSON");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some("quote\"and\nnewline"));
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        let payload = doc.get("stats").expect("stats member");
        assert_eq!(payload.get("requests").and_then(Value::as_usize), Some(7));
        assert_eq!(payload.get("malformed").and_then(Value::as_usize), Some(3));
        assert_eq!(payload.get("queue_peak").and_then(Value::as_usize), Some(4));
        assert_eq!(payload.get("p99_ms").and_then(Value::as_f64), Some(30.0));
        assert_eq!(payload.get("p999_ms").and_then(Value::as_f64), Some(31.0));
        assert_eq!(payload.get("req_per_s").and_then(Value::as_f64), Some(2.5));
        assert_eq!(
            payload.get("slow_exemplar").and_then(Value::as_str),
            Some("000000000000000000000000deadbeef"),
            "the slow exemplar travels as a 32-hex trace id"
        );
    }

    #[test]
    fn signed_slack_has_both_signs() {
        let now = Instant::now();
        let ahead = now + Duration::from_millis(250);
        assert!(signed_slack(ahead, now) > 0.2);
        assert!(signed_slack(now, ahead) < -0.2);
    }
}
