//! `solve_batch` observability loopback: per-variant access-log entries
//! with registry attribution, and the full `mosc-analyze` lint suite over
//! the resulting log — the same audit `ci.sh` runs against a live daemon.
//!
//! This file is its own test binary and holds exactly one `#[test]`: it
//! enables the process-global `mosc-obs` recorder, which must not race the
//! other loopback tests' assumptions.

use mosc_analyze::json::Value;
use mosc_serve::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A platform no other test interns: the registry is process-global.
const PLATFORM: &str = r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":57.0}"#;

fn roundtrip(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Value::parse(&response).expect("response parses as JSON")
}

#[test]
fn batch_access_entries_carry_registry_attribution_and_lint_clean() {
    mosc_obs::enable();
    let log_path =
        std::env::temp_dir().join(format!("mosc-serve-batch-access-{}.jsonl", std::process::id()));
    let server = Server::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .access_log(log_path.to_string_lossy().into_owned())
        .bind()
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    // Cold batch: the resolve builds the platform, so variant 0's entry
    // carries the eigendecomposition work.
    let cold = format!(
        r#"{{"id":"cb","op":"solve_batch","platform":{PLATFORM},"variants":[{{"solver":"ao"}},{{"solver":"lns"}}]}}"#
    );
    let doc = roundtrip(addr, &cold);
    assert_eq!(doc.get("registry").and_then(Value::as_str), Some("cold"), "{doc:?}");

    // Warm batch, identical variants: answered from the solution cache.
    let doc = roundtrip(addr, &cold.replace(r#""id":"cb""#, r#""id":"wh""#));
    assert_eq!(doc.get("registry").and_then(Value::as_str), Some("warm"), "{doc:?}");

    // Warm batch, *fresh* cache keys (threads is part of the key but does
    // not change the math): a real solve on the interned platform — the
    // case the M110 lint polices, zero eigendecompositions.
    let warm_miss = format!(
        r#"{{"id":"wm","op":"solve_batch","platform":{PLATFORM},"variants":[{{"solver":"ao","options":{{"threads":2}}}}]}}"#
    );
    let doc = roundtrip(addr, &warm_miss);
    assert_eq!(doc.get("registry").and_then(Value::as_str), Some("warm"), "{doc:?}");
    let results = doc.get("results").and_then(Value::as_array).expect("results");
    assert_eq!(results[0].get("cached").and_then(Value::as_bool), Some(false), "{doc:?}");

    roundtrip(addr, r#"{"id":"q","op":"shutdown"}"#);
    join.join().expect("server thread");
    let log = std::fs::read_to_string(&log_path).expect("access log exists");
    let _ = std::fs::remove_file(&log_path);

    let f = |doc: &Value, name: &str| doc.get(name).and_then(Value::as_f64).unwrap();
    let mut batch_lines = 0;
    for line in log.lines() {
        let doc = Value::parse(line).expect("access log line parses");
        if doc.get("type").and_then(Value::as_str) != Some("access") {
            continue;
        }
        let Some(batch) = doc.get("batch").and_then(Value::as_str) else { continue };
        batch_lines += 1;
        let id = doc.get("id").and_then(Value::as_str).unwrap();
        assert!(id.starts_with(&format!("{batch}#")), "variant ids derive from the batch: {line}");
        assert_eq!(doc.get("op").and_then(Value::as_str), Some("solve"), "{line}");
        match batch {
            "cb" => {
                assert_eq!(f(&doc, "registry_misses"), 1.0, "cold batch: {line}");
                assert_eq!(f(&doc, "registry_hits"), 0.0, "cold batch: {line}");
                if id == "cb#0" {
                    assert!(f(&doc, "eigen_calls") > 0.0, "the build lands on variant 0: {line}");
                } else {
                    assert_eq!(f(&doc, "eigen_calls"), 0.0, "{line}");
                }
            }
            "wh" | "wm" => {
                assert_eq!(f(&doc, "registry_hits"), 1.0, "warm batch: {line}");
                assert_eq!(f(&doc, "registry_misses"), 0.0, "warm batch: {line}");
                assert_eq!(
                    f(&doc, "eigen_calls"),
                    0.0,
                    "a warm resolve must do zero eigen work: {line}"
                );
                if batch == "wm" {
                    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(false), "{line}");
                    assert!(f(&doc, "period_map_matmuls") > 0.0, "real solve on warm: {line}");
                }
            }
            other => panic!("unexpected batch id {other}: {line}"),
        }
    }
    assert_eq!(batch_lines, 5, "2 cold + 2 warm-hit + 1 warm-miss variants\n{log}");

    // The analyzer's full telemetry suite — including the M110/M111
    // registry joins — must come back clean on a healthy log.
    let report = mosc_analyze::analyze_telemetry(&log).expect("log loads as a stream");
    assert!(report.is_clean(), "lints flagged a healthy batch log:\n{report}");
    mosc_obs::disable();
}
