//! Front-end equivalence property test: for randomized interleaved
//! multi-connection workloads — pipelined bursts, mid-request disconnects,
//! deadline expiries, protocol ops — the threaded front end and the event
//! loop must produce byte-identical response streams (modulo fields that
//! are volatile by construction: wall-clock timings, cache/registry
//! warmth, and live counters).
#![cfg(unix)]

use mosc_analyze::json::Value;
use mosc_serve::proto::value_to_json;
use mosc_serve::{Frontend, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mosc_testutil::{propcheck_cases, Rng64};

const PLATFORMS: &[&str] = &[
    r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":58.0}"#,
    r#"{"rows":1,"cols":3,"levels":[0.6,1.3],"t_max_c":58.5}"#,
    r#"{"rows":1,"cols":2,"levels":[0.6,1.0,1.3],"t_max_c":59.0}"#,
];

/// One scripted client connection: the request lines it writes (as one
/// pipelined burst) and whether it disconnects mid-line afterwards.
#[derive(Clone, Debug)]
struct Script {
    lines: Vec<String>,
    /// Sends these bytes *without* a newline, then closes: a mid-request
    /// disconnect the server must absorb without answering or crashing.
    partial_tail: Option<String>,
}

fn random_script(rng: &mut Rng64, conn: usize) -> Script {
    let n = 1 + rng.below(4);
    let lines = (0..n)
        .map(|i| {
            let id = format!("c{conn}r{i}");
            match rng.below(6) {
                0 => format!(r#"{{"id":"{id}","op":"ping"}}"#),
                1 => format!(r#"{{"id":"{id}","op":"hello","max_version":1}}"#),
                2 => format!(r#"{{"id":"{id}","op":"nonsense-op"}}"#),
                // A zero deadline expires while queued: a deterministic
                // `deadline` error from either front end.
                3 => {
                    let p = PLATFORMS[rng.below(PLATFORMS.len() as u64) as usize];
                    format!(
                        r#"{{"id":"{id}","solver":"ao","platform":{p},"options":{{"deadline_ms":0}}}}"#
                    )
                }
                _ => {
                    let p = PLATFORMS[rng.below(PLATFORMS.len() as u64) as usize];
                    let solver = if rng.below(2) == 0 { "ao" } else { "lns" };
                    format!(r#"{{"id":"{id}","solver":"{solver}","platform":{p}}}"#)
                }
            }
        })
        .collect();
    let partial_tail =
        (rng.below(3) == 0).then(|| r#"{"id":"never","solver":"ao","pla"#.to_owned());
    Script { lines, partial_tail }
}

/// Normalizes one response line: volatile members (timings, cache/registry
/// warmth, live stats) are masked, then the document is re-serialized
/// canonically so member order cannot differ.
fn normalize(line: &str) -> String {
    let mut doc = Value::parse(line).unwrap_or_else(|e| panic!("response parses ({e:?}): {line}"));
    mask(&mut doc);
    value_to_json(&doc)
}

fn mask(doc: &mut Value) {
    if let Value::Object(members) = doc {
        for (name, value) in members.iter_mut() {
            match name.as_str() {
                "wall_ms" => *value = Value::Number(-1.0),
                "cached" => *value = Value::Bool(false),
                "registry" => *value = Value::String("masked".to_owned()),
                "results" => {
                    if let Value::Array(items) = value {
                        for item in items {
                            mask(item);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Runs every script against a fresh single-worker server on the given
/// front end; returns each connection's normalized responses, in
/// per-connection order.
fn run_scripts(frontend: Frontend, scripts: &[Script]) -> Vec<Vec<String>> {
    let server = Server::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .queue_capacity(64)
        .frontend(frontend)
        .bind()
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    let clients: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|script| std::thread::spawn(move || run_client(addr, &script)))
        .collect();
    let outputs: Vec<Vec<String>> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();

    handle.shutdown();
    join.join().expect("server thread");
    outputs
}

fn run_client(addr: SocketAddr, script: &Script) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let burst: String = script.lines.iter().map(|l| format!("{l}\n")).collect();
    stream.write_all(burst.as_bytes()).expect("send burst");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut responses = Vec::with_capacity(script.lines.len());
    for _ in 0..script.lines.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        responses.push(normalize(&line));
    }
    if let Some(tail) = &script.partial_tail {
        // Mid-request disconnect: write a fragment, never the newline.
        let _ = stream.write_all(tail.as_bytes());
    }
    drop(stream);
    // Reader-answered ops (ping, cache hits) race worker-answered solves
    // on *both* front ends, so per-connection arrival order of mixed kinds
    // is legitimately nondeterministic; the response *set* per connection
    // is not. Ids embed the request index, so sorting gives a canonical
    // order.
    responses.sort();
    responses
}

#[test]
fn both_front_ends_produce_identical_response_streams() {
    // Few cases, real solves: each case runs two full servers.
    propcheck_cases("front-end response-stream equivalence", 6, |rng| {
        let scripts: Vec<Script> =
            (0..2 + rng.below(3)).map(|i| random_script(rng, i as usize)).collect();
        let threaded = run_scripts(Frontend::Threads, &scripts);
        let evloop = run_scripts(Frontend::Evloop, &scripts);
        assert_eq!(threaded, evloop, "front ends diverged on scripts: {scripts:?}");
    });
}

#[test]
fn deadline_and_disconnect_heavy_workload_matches() {
    // A fixed adversarial script mix run once per front end: every
    // connection ends in a mid-request disconnect, half the requests
    // carry an already-expired deadline.
    let scripts: Vec<Script> = (0..3)
        .map(|c| Script {
            lines: (0..3)
                .map(|i| {
                    let id = format!("d{c}r{i}");
                    if i % 2 == 0 {
                        let p = PLATFORMS[c % PLATFORMS.len()];
                        format!(
                            r#"{{"id":"{id}","solver":"ao","platform":{p},"options":{{"deadline_ms":0}}}}"#
                        )
                    } else {
                        format!(r#"{{"id":"{id}","op":"ping"}}"#)
                    }
                })
                .collect(),
            partial_tail: Some(r#"{"id":"torn","op":"pi"#.to_owned()),
        })
        .collect();
    let threaded = run_scripts(Frontend::Threads, &scripts);
    let evloop = run_scripts(Frontend::Evloop, &scripts);
    assert_eq!(threaded, evloop);
    for (c, responses) in threaded.iter().enumerate() {
        // Sorted ids are exactly the request ids: every request answered,
        // nothing invented, and the torn tail got no response.
        let ids: Vec<String> = responses
            .iter()
            .map(|r| {
                let doc = Value::parse(r).expect("normalized response parses");
                doc.get("id").and_then(Value::as_str).expect("id").to_owned()
            })
            .collect();
        let want: Vec<String> = (0..3).map(|i| format!("d{c}r{i}")).collect();
        assert_eq!(ids, want, "{responses:?}");
    }
}

/// Idle-timeout behavior is front-end independent: an idle connection is
/// closed, an active one survives.
#[test]
fn idle_connections_are_reaped_on_both_front_ends() {
    for frontend in [Frontend::Threads, Frontend::Evloop] {
        let server = Server::builder()
            .addr("127.0.0.1:0")
            .workers(1)
            .frontend(frontend)
            .idle_timeout(Duration::from_millis(300))
            .bind()
            .expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("serve loop"));

        let idle = TcpStream::connect(addr).expect("connect idle");
        let mut reader = BufReader::new(idle.try_clone().expect("clone"));
        // The server must close the idle connection: read_line returns 0.
        idle.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("idle close yields clean EOF");
        assert_eq!(n, 0, "idle connection reaped ({frontend}): {line:?}");

        // A connection that stays active outlives several idle windows.
        let mut active = TcpStream::connect(addr).expect("connect active");
        let mut active_reader = BufReader::new(active.try_clone().expect("clone"));
        for i in 0..4 {
            std::thread::sleep(Duration::from_millis(150));
            active
                .write_all(format!("{{\"id\":\"keep{i}\",\"op\":\"ping\"}}\n").as_bytes())
                .expect("send ping");
            let mut pong = String::new();
            active_reader.read_line(&mut pong).expect("read pong");
            assert!(pong.contains("pong"), "active connection stays up ({frontend}): {pong:?}");
        }
        handle.shutdown();
        join.join().expect("server thread");
    }
}
