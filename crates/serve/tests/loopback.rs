//! Loopback integration tests: a real in-process [`Server`] on `127.0.0.1:0`
//! with real TCP clients — concurrency, exactly-once responses, cache
//! counters, backpressure and drain-then-exit, all on the `specs/smoke.json`
//! platform. Every test runs once per front end (threaded and, on unix,
//! the event loop): the wire behavior is identical by contract.

use mosc_analyze::json::Value;
use mosc_serve::{Frontend, ServeBuilder, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// The `specs/smoke.json` platform, inlined.
const PLATFORM: &str = r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#;

/// Expands one `fn body(Frontend)` into a `#[test]` per front end.
macro_rules! per_frontend {
    ($($name:ident),+ $(,)?) => {$(
        mod $name {
            #[test]
            fn threads() {
                super::$name(mosc_serve::Frontend::Threads);
            }
            #[cfg(unix)]
            #[test]
            fn evloop() {
                super::$name(mosc_serve::Frontend::Evloop);
            }
        }
    )+};
}

per_frontend!(
    concurrent_clients_each_get_exactly_one_response,
    repeated_identical_requests_are_answered_from_the_cache,
    want_schedule_round_trips_through_the_text_format,
    a_full_queue_answers_overloaded_immediately,
    malformed_and_unsolvable_requests_get_typed_errors,
    a_deadline_expiring_mid_solve_is_enforced_before_the_response,
    solve_batch_interns_the_platform_and_answers_per_variant,
    a_batch_with_a_broken_platform_gets_one_usage_error,
    shutdown_op_drains_and_stops_the_server,
    hello_negotiates_the_protocol_version,
    pipelined_requests_are_answered_in_order,
    a_half_closed_connection_still_receives_its_responses,
);

fn start(
    builder: ServeBuilder,
) -> (SocketAddr, mosc_serve::ServeHandle, std::thread::JoinHandle<()>) {
    let server = builder.bind().expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

fn quick_builder(frontend: Frontend) -> ServeBuilder {
    Server::builder().addr("127.0.0.1:0").frontend(frontend)
}

/// Sends `line` and reads one response line on a fresh connection.
fn roundtrip(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Value::parse(&response).expect("response parses as JSON")
}

fn solve_line(id: &str, solver: &str) -> String {
    format!(r#"{{"id":"{id}","solver":"{solver}","platform":{PLATFORM}}}"#)
}

/// The frozen positional-options constructor keeps working behind the
/// builder: out-of-repo callers that have not migrated yet still get a
/// serving daemon with identical defaults.
#[test]
fn deprecated_positional_bind_still_serves() {
    #[allow(deprecated)]
    let server =
        Server::bind(mosc_serve::ServeOptions { addr: "127.0.0.1:0".into(), ..Default::default() })
            .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));
    let doc = roundtrip(addr, r#"{"id":"shim","op":"ping"}"#);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
    assert_eq!(doc.get("pong").and_then(Value::as_bool), Some(true), "{doc:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn concurrent_clients_each_get_exactly_one_response(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    // Warm the cache sequentially so the concurrent round is deterministic
    // (identical misses racing in parallel would each count a miss).
    roundtrip(addr, &solve_line("warm-ao", "ao"));
    roundtrip(addr, &solve_line("warm-lns", "lns"));
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let solver = if i % 2 == 0 { "ao" } else { "lns" };
                let id = format!("c{i}");
                let doc = roundtrip(addr, &solve_line(&id, solver));
                (id, doc)
            })
        })
        .collect();
    for client in clients {
        let (id, doc) = client.join().expect("client thread");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some(id.as_str()), "{doc:?}");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
        assert_eq!(doc.get("feasible").and_then(Value::as_bool), Some(true), "{doc:?}");
        assert!(doc.get("throughput").and_then(Value::as_f64).unwrap_or(0.0) > 0.0);
    }
    let stats = handle.stats();
    assert_eq!(stats.requests, 10, "{stats:?}");
    assert_eq!(stats.responses, 10, "{stats:?}");
    assert_eq!(stats.cache_misses, 2, "{stats:?}");
    assert_eq!(stats.cache_hits, 8, "{stats:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn repeated_identical_requests_are_answered_from_the_cache(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    let first = roundtrip(addr, &solve_line("r0", "ao"));
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false), "{first:?}");
    let throughput = first.get("throughput").and_then(Value::as_f64).unwrap();
    for i in 1..4 {
        let doc = roundtrip(addr, &solve_line(&format!("r{i}"), "ao"));
        assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(true), "{doc:?}");
        let t = doc.get("throughput").and_then(Value::as_f64).unwrap();
        assert!((t - throughput).abs() < 1e-12, "cached answer must be identical");
    }
    let stats = handle.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 3), "{stats:?}");

    // The wire `stats` op reports the same counters.
    let doc = roundtrip(addr, r#"{"id":"s","op":"stats"}"#);
    let wire = doc.get("stats").expect("stats payload");
    assert_eq!(wire.get("cache_hits").and_then(Value::as_usize), Some(3), "{doc:?}");
    assert_eq!(wire.get("cache_misses").and_then(Value::as_usize), Some(1), "{doc:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn want_schedule_round_trips_through_the_text_format(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    let line = format!(r#"{{"id":"ws","solver":"ao","platform":{PLATFORM},"want_schedule":true}}"#);
    let doc = roundtrip(addr, &line);
    let schedule_text = doc.get("schedule").and_then(Value::as_str).expect("schedule text");
    let schedule = mosc_sched::text::from_text(schedule_text).expect("parses");
    assert_eq!(schedule.n_cores(), 2);
    handle.shutdown();
    join.join().expect("server thread");
}

fn a_full_queue_answers_overloaded_immediately(frontend: Frontend) {
    // One worker, one queue slot. Park the worker on a deliberately slow
    // request (9-core 4-level EXS), fill the slot, then watch the next
    // request bounce.
    let (addr, handle, join) = start(quick_builder(frontend).workers(1).queue_capacity(1));
    let slow = r#"{"rows":3,"cols":3,"levels":[0.6,0.8,1.0,1.3],"t_max_c":65.0}"#;
    let parked = {
        let line = format!(
            r#"{{"id":"slow","solver":"exs","platform":{slow},"options":{{"threads":1}}}}"#
        );
        std::thread::spawn(move || roundtrip(addr, &line))
    };
    // Wait until the slow job has been queued (peak >= 1) and picked up.
    loop {
        let s = handle.stats();
        if s.queue_peak >= 1 && s.queue_depth == 0 {
            break;
        }
        std::thread::yield_now();
    }
    // Fill the single queue slot with a second distinct platform...
    let fill = r#"{"rows":1,"cols":3,"levels":[0.6,1.3],"t_max_c":55.0}"#;
    let fill_client = {
        let line = format!(r#"{{"id":"fill","solver":"exs","platform":{fill}}}"#);
        std::thread::spawn(move || roundtrip(addr, &line))
    };
    while handle.stats().queue_depth == 0 && handle.stats().responses < 2 {
        std::thread::yield_now();
    }
    // ...so a third distinct request must shed immediately.
    let doc = roundtrip(addr, &solve_line("bounced", "pco"));
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("overloaded"), "{doc:?}");
    assert_eq!(doc.get("id").and_then(Value::as_str), Some("bounced"), "{doc:?}");
    assert!(handle.stats().rejected >= 1);
    // The parked and queued requests still complete normally.
    assert_eq!(parked.join().unwrap().get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(fill_client.join().unwrap().get("status").and_then(Value::as_str), Some("ok"));
    handle.shutdown();
    join.join().expect("server thread");
}

fn malformed_and_unsolvable_requests_get_typed_errors(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    let doc = roundtrip(addr, "this is not json");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("parse"), "{doc:?}");

    // An unknown op is a structured `unsupported` error naming the real
    // ops, not a dropped connection (and an unknown solver stays `parse`).
    let doc = roundtrip(addr, r#"{"id":"u","op":"warp"}"#);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("unsupported"), "{doc:?}");
    assert!(
        doc.get("message").and_then(Value::as_str).is_some_and(|m| m.contains("solve_batch")),
        "the error lists the supported ops: {doc:?}"
    );
    let doc = roundtrip(addr, &solve_line("u2", "warp-drive"));
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("parse"), "{doc:?}");

    // An infeasible platform (T_max below what the floor level can hold).
    let cold = r#"{"rows":3,"cols":3,"levels":[0.6,1.3],"t_max_c":36.0}"#;
    let line = format!(r#"{{"id":"inf","solver":"exs","platform":{cold}}}"#);
    let doc = roundtrip(addr, &line);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("infeasible"), "{doc:?}");

    // A zero deadline trips the deadline path, not a solve.
    let line = format!(
        r#"{{"id":"dl","solver":"exs","platform":{PLATFORM},"options":{{"deadline_ms":0}}}}"#
    );
    let doc = roundtrip(addr, &line);
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("deadline"), "{doc:?}");
    assert!(handle.stats().deadline_exceeded >= 1);
    handle.shutdown();
    join.join().expect("server thread");
}

fn a_deadline_expiring_mid_solve_is_enforced_before_the_response(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    // The governor ignores deadlines by contract, so a fine-grained control
    // period makes the solve reliably outlive a short deadline; the server
    // must notice at completion and answer `deadline` instead of returning
    // (and caching) a result the client already gave up on.
    let line = format!(
        concat!(
            r#"{{"id":"slowdl","solver":"governor","platform":{p},"#,
            r#""options":{{"deadline_ms":10,"governor_control_period":0.001}}}}"#
        ),
        p = PLATFORM
    );
    let doc = roundtrip(addr, &line);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("deadline"), "{doc:?}");
    assert!(handle.stats().deadline_exceeded >= 1);
    // The expired result must not have been cached (the deadline is masked
    // out of the cache key): the same query without a deadline re-solves.
    let line = format!(
        concat!(
            r#"{{"id":"fresh","solver":"governor","platform":{p},"#,
            r#""options":{{"governor_control_period":0.001}}}}"#
        ),
        p = PLATFORM
    );
    let doc = roundtrip(addr, &line);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(false), "{doc:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn solve_batch_interns_the_platform_and_answers_per_variant(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    // A platform unique to this test *and* front end: the interning
    // registry is process-global, so sharing a platform across tests would
    // make the cold/warm assertions racy.
    let t_max = match frontend {
        Frontend::Threads => 56.0,
        Frontend::Evloop => 56.5,
    };
    let platform = format!(r#"{{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":{t_max}}}"#);
    let batch = |id: &str| {
        format!(
            concat!(
                r#"{{"id":"{id}","op":"solve_batch","platform":{p},"#,
                r#""variants":[{{"solver":"ao"}},{{"solver":"lns","want_schedule":true}}]}}"#
            ),
            id = id,
            p = platform
        )
    };
    let doc = roundtrip(addr, &batch("b0"));
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
    assert_eq!(doc.get("registry").and_then(Value::as_str), Some("cold"), "{doc:?}");
    let results = doc.get("results").and_then(Value::as_array).expect("results array");
    assert_eq!(results.len(), 2, "{doc:?}");
    let throughput: Vec<f64> = results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            assert_eq!(
                r.get("id").and_then(Value::as_str).unwrap(),
                format!("b0#{i}"),
                "variant ids derive from the batch id, in order"
            );
            assert_eq!(r.get("status").and_then(Value::as_str), Some("ok"), "{r:?}");
            assert_eq!(r.get("cached").and_then(Value::as_bool), Some(false), "{r:?}");
            assert_eq!(r.get("feasible").and_then(Value::as_bool), Some(true), "{r:?}");
            r.get("throughput").and_then(Value::as_f64).unwrap()
        })
        .collect();
    assert!(results[0].get("schedule").is_none(), "schedule only where requested");
    let schedule = results[1].get("schedule").and_then(Value::as_str).expect("schedule text");
    assert_eq!(mosc_sched::text::from_text(schedule).expect("parses").n_cores(), 2);

    // The identical batch again: warm registry, every variant a cache hit
    // with bit-identical answers.
    let doc = roundtrip(addr, &batch("b1"));
    assert_eq!(doc.get("registry").and_then(Value::as_str), Some("warm"), "{doc:?}");
    let results = doc.get("results").and_then(Value::as_array).expect("results array");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.get("cached").and_then(Value::as_bool), Some(true), "{r:?}");
        let t = r.get("throughput").and_then(Value::as_f64).unwrap();
        assert!((t - throughput[i]).abs() < 1e-15, "cached variant must be identical");
    }
    let stats = handle.stats();
    assert_eq!(stats.requests, 2, "one request per batch line, {stats:?}");
    assert_eq!((stats.cache_misses, stats.cache_hits), (2, 2), "{stats:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn a_batch_with_a_broken_platform_gets_one_usage_error(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    let line = concat!(
        r#"{"id":"bad","op":"solve_batch","platform":{"rows":0,"cols":0,"levels":[],"t_max_c":55.0},"#,
        r#""variants":[{"solver":"ao"},{"solver":"lns"}]}"#
    );
    let doc = roundtrip(addr, line);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("usage"), "{doc:?}");
    assert_eq!(doc.get("id").and_then(Value::as_str), Some("bad"), "{doc:?}");
    handle.shutdown();
    join.join().expect("server thread");
}

fn shutdown_op_drains_and_stops_the_server(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    let doc = roundtrip(addr, r#"{"id":"p","op":"ping"}"#);
    assert_eq!(doc.get("pong").and_then(Value::as_bool), Some(true), "{doc:?}");

    let doc = roundtrip(addr, r#"{"id":"bye","op":"shutdown"}"#);
    assert_eq!(doc.get("shutting_down").and_then(Value::as_bool), Some(true), "{doc:?}");
    // run() must return on its own — no handle.shutdown() here.
    join.join().expect("server thread exits after the shutdown op");
    let stats = handle.stats();
    assert_eq!(stats.responses, 2, "{stats:?}");
}

fn hello_negotiates_the_protocol_version(frontend: Frontend) {
    let (addr, handle, join) = start(quick_builder(frontend));
    // A plain hello negotiates the newest version the server speaks.
    let doc = roundtrip(addr, r#"{"id":"h","op":"hello"}"#);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
    assert_eq!(doc.get("server").and_then(Value::as_str), Some("mosc-serve"), "{doc:?}");
    assert_eq!(
        doc.get("version").and_then(Value::as_usize),
        Some(mosc_serve::PROTO_VERSION_MAX as usize),
        "{doc:?}"
    );
    let ops = doc.get("ops").and_then(Value::as_array).expect("ops array");
    let ops: Vec<&str> = ops.iter().filter_map(Value::as_str).collect();
    assert!(ops.contains(&"solve") && ops.contains(&"hello"), "{ops:?}");

    // A client capped below the server's floor gets a usage error; one
    // capped above settles on the server's max.
    let doc = roundtrip(addr, r#"{"id":"h0","op":"hello","max_version":0}"#);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("error"), "{doc:?}");
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("usage"), "{doc:?}");
    let doc = roundtrip(addr, r#"{"id":"h9","op":"hello","max_version":9}"#);
    assert_eq!(
        doc.get("version").and_then(Value::as_usize),
        Some(mosc_serve::PROTO_VERSION_MAX as usize),
        "{doc:?}"
    );
    handle.shutdown();
    join.join().expect("server thread");
}

fn pipelined_requests_are_answered_in_order(frontend: Frontend) {
    // One worker serializes execution, so responses to a burst written in
    // one packet must come back in request order, one line each.
    let (addr, handle, join) = start(quick_builder(frontend).workers(1));
    let mut stream = TcpStream::connect(addr).expect("connect");
    let burst: String =
        (0..10).map(|i| format!(r#"{{"id":"pl{i}","op":"ping"}}"#) + "\n").collect();
    stream.write_all(burst.as_bytes()).expect("send burst");
    let mut reader = BufReader::new(stream);
    for i in 0..10 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        let doc = Value::parse(&line).expect("response parses");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some(format!("pl{i}").as_str()));
    }
    handle.shutdown();
    join.join().expect("server thread");
}

fn a_half_closed_connection_still_receives_its_responses(frontend: Frontend) {
    // Write requests, shut down the send half, then read: the responses
    // must still arrive (EOF does not cancel in-flight work).
    let (addr, handle, join) = start(quick_builder(frontend));
    let mut stream = TcpStream::connect(addr).expect("connect");
    let lines = format!("{}\n{}\n", solve_line("hc0", "ao"), r#"{"id":"hc1","op":"ping"}"#);
    stream.write_all(lines.as_bytes()).expect("send");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut got = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        let doc = Value::parse(&line).expect("response parses");
        got.push(doc.get("id").and_then(Value::as_str).unwrap().to_string());
    }
    got.sort();
    assert_eq!(got, ["hc0", "hc1"], "both responses delivered after half-close");
    handle.shutdown();
    join.join().expect("server thread");
}
