//! End-to-end observability loopback: lifecycle latency phases, the
//! `metrics` wire op's Prometheus exposition, and the access log with
//! slow-request span trees and kernel-counter deltas.
//!
//! This file is its own test binary and holds exactly one `#[test]`: it
//! enables the process-global `mosc-obs` recorder, which must not race the
//! other loopback tests' assumptions.

use mosc_analyze::json::Value;
use mosc_serve::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const PLATFORM: &str = r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#;

fn roundtrip(addr: SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Value::parse(&response).expect("response parses as JSON")
}

#[test]
fn latency_metrics_and_access_log_cover_every_request() {
    mosc_obs::enable();
    let log_path =
        std::env::temp_dir().join(format!("mosc-serve-access-{}.jsonl", std::process::id()));
    let server = Server::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        // Zero threshold: every request counts as slow, so solved requests
        // must carry their span trees.
        .slow_threshold(Duration::ZERO)
        .access_log(log_path.to_string_lossy().into_owned())
        .bind()
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    // Three solve requests: an AO miss (period-map/steady-state kernel
    // deltas), an identical AO hit (cached, no solver spans), and a
    // governor run (its transient model builds matrix exponentials, so the
    // expm.calls delta is nonzero).
    let ao = format!(r#"{{"id":"ao-1","solver":"ao","platform":{PLATFORM}}}"#);
    let doc = roundtrip(addr, &ao);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");
    let ao_hit = format!(r#"{{"id":"ao-2","solver":"ao","platform":{PLATFORM}}}"#);
    let doc = roundtrip(addr, &ao_hit);
    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(true), "{doc:?}");
    let gov = format!(
        r#"{{"id":"gov-1","solver":"governor","platform":{PLATFORM},"options":{{"governor_horizon":10.0,"governor_warmup":5.0,"governor_control_period":0.01}}}}"#
    );
    let doc = roundtrip(addr, &gov);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"), "{doc:?}");

    // The stats op now reports latency quantiles for those three solves.
    let stats = roundtrip(addr, r#"{"id":"s","op":"stats"}"#);
    let payload = stats.get("stats").expect("stats payload");
    assert_eq!(payload.get("requests").and_then(Value::as_usize), Some(3), "{payload:?}");
    assert!(payload.get("p50_ms").and_then(Value::as_f64).unwrap() > 0.0, "{payload:?}");
    assert!(
        payload.get("max_ms").and_then(Value::as_f64).unwrap()
            >= payload.get("p99_ms").and_then(Value::as_f64).unwrap(),
        "{payload:?}"
    );

    // The metrics op returns Prometheus text whose per-op total-phase
    // counts sum to the number of solve requests served.
    let metrics = roundtrip(addr, r#"{"id":"m","op":"metrics"}"#);
    let text = metrics.get("metrics").and_then(Value::as_str).expect("metrics text").to_owned();
    assert!(text.contains("# TYPE mosc_serve_latency_seconds histogram"), "{text}");
    assert!(text.contains("mosc_serve_requests_total 3"), "{text}");
    let mut total_phase_count = 0u64;
    for line in text.lines() {
        if line.starts_with("mosc_serve_latency_seconds_count")
            && line.contains("phase=\"total\"")
            && !line.contains("op=\"proto\"")
        {
            total_phase_count += line.rsplit(' ').next().unwrap().parse::<u64>().unwrap();
        }
    }
    assert_eq!(total_phase_count, 3, "histogram counts must equal served solve requests\n{text}");
    // Bucket series are cumulative: every +Inf bucket equals its count.
    for (op, expect) in [("ao", 2u64), ("governor", 1u64)] {
        let needle = format!(
            "mosc_serve_latency_seconds_bucket{{op=\"{op}\",phase=\"total\",le=\"+Inf\"}} {expect}"
        );
        assert!(text.contains(&needle), "missing `{needle}` in\n{text}");
    }

    // Drain (writes the access-log trailer), then audit the log.
    roundtrip(addr, r#"{"id":"q","op":"shutdown"}"#);
    join.join().expect("server thread");
    let log = std::fs::read_to_string(&log_path).expect("access log exists");
    let _ = std::fs::remove_file(&log_path);

    let mut access_lines = 0;
    let mut saw_summary = false;
    let mut hist_lines = 0;
    for line in log.lines() {
        let doc = Value::parse(line).expect("access log line parses");
        match doc.get("type").and_then(Value::as_str) {
            Some("access") => {
                access_lines += 1;
                let f = |name: &str| doc.get(name).and_then(Value::as_f64).unwrap();
                let (qw, sv, total) = (f("queue_wait_s"), f("service_s"), f("total_s"));
                // The satellite invariant: phases nest inside the total on
                // one monotone clock (M070 checks the same thing).
                assert!(qw >= 0.0 && sv >= 0.0, "{line}");
                assert!(qw + sv <= total + 1e-6, "phase sum exceeds total: {line}");
                let id = doc.get("id").and_then(Value::as_str).unwrap();
                if id == "gov-1" {
                    assert!(f("expm_calls") > 0.0, "governor must report expm calls: {line}");
                    let spans = doc.get("spans").expect("slow request carries spans");
                    let span_text = format!("{spans:?}");
                    assert!(span_text.contains("reactive.simulate"), "{line}");
                }
                if id == "ao-1" {
                    assert!(f("period_map_matmuls") > 0.0, "{line}");
                    let spans = format!("{:?}", doc.get("spans").expect("spans"));
                    assert!(spans.contains("ao.solve"), "{line}");
                }
                if id == "ao-2" {
                    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(true), "{line}");
                }
            }
            Some("hist_snapshot") => {
                hist_lines += 1;
                let count = doc.get("count").and_then(Value::as_f64).unwrap();
                let buckets = match doc.get("buckets") {
                    Some(Value::Array(items)) => items,
                    other => panic!("buckets must be an array, got {other:?}"),
                };
                let mut prev = 0.0;
                for b in buckets {
                    let cum = b.get("cum").and_then(Value::as_f64).unwrap();
                    assert!(cum >= prev, "bucket series must be cumulative: {line}");
                    prev = cum;
                }
                assert_eq!(prev, count, "last bucket must equal the count: {line}");
            }
            Some("serve_summary") => {
                saw_summary = true;
                assert_eq!(doc.get("requests").and_then(Value::as_usize), Some(3), "{line}");
            }
            other => panic!("unexpected access-log line type {other:?}: {line}"),
        }
    }
    // 3 solves + stats + metrics + shutdown = 6 completed requests.
    assert_eq!(access_lines, 6, "one access line per request\n{log}");
    assert!(hist_lines > 0, "drain must snapshot the latency histograms");
    assert!(saw_summary, "drain must write the serve_summary trailer");
    mosc_obs::disable();
}
