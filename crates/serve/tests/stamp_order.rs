//! Regression test for stamp-then-respond ordering: a client that reads
//! its response and *immediately* scrapes the access log / stats must see
//! its own request already recorded. The reader-thread cache-hit fast path
//! used to leave this to per-call-site convention; the `Stamped` receipt
//! in `server.rs` now makes the order a type invariant, and this test pins
//! the observable consequence on both front ends — backed by the analyzer's
//! M09x trace lints over the resulting log.

use mosc_analyze::json::Value;
use mosc_serve::{Frontend, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const PLATFORM: &str = r#"{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":55.0}"#;

fn check(frontend: Frontend, t_max: f64) {
    let log_path = std::env::temp_dir()
        .join(format!("mosc-serve-stamp-{frontend}-{}.jsonl", std::process::id()));
    let server = Server::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .frontend(frontend)
        .access_log(log_path.to_string_lossy().into_owned())
        .bind()
        .expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    // A platform unique to this front end keeps the process-global
    // interning registry from making hit/miss assertions racy.
    let platform = PLATFORM.replace("55.0", &t_max.to_string());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut roundtrip = |id: &str| -> Value {
        let line = format!(r#"{{"id":"{id}","solver":"ao","platform":{platform}}}"#);
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        Value::parse(&response).expect("response parses")
    };

    // Miss, then the identical request: the hit is answered on the read
    // path without queueing.
    let miss = roundtrip("miss");
    assert_eq!(miss.get("cached").and_then(Value::as_bool), Some(false), "{miss:?}");
    let hit = roundtrip("hit");
    assert_eq!(hit.get("cached").and_then(Value::as_bool), Some(true), "{hit:?}");

    // The moment the hit's response bytes were readable, its completion
    // must already be in the counters and on disk: stamp precedes respond.
    let stats = handle.stats();
    assert!(stats.responses >= 2, "response counted before the bytes landed: {stats:?}");
    assert_eq!(stats.cache_hits, 1, "{stats:?}");
    let log_now = std::fs::read_to_string(&log_path).expect("access log readable mid-run");
    let hit_line = log_now
        .lines()
        .find(|l| l.contains(r#""id":"hit""#))
        .unwrap_or_else(|| panic!("hit must be stamped before its response is sent:\n{log_now}"));
    let doc = Value::parse(hit_line).expect("access line parses");
    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(true), "{hit_line}");

    handle.shutdown();
    drop(stream);
    join.join().expect("server thread");

    // The full drained log must satisfy the analyzer's deny-mode lint
    // suite — including the M09x trace lints (M090 timestamp ordering,
    // M093 per-connection sequence monotonicity) that would flag a
    // response stamped after later work.
    let log = std::fs::read_to_string(&log_path).expect("access log");
    let report = mosc_analyze::analyze_telemetry(&log).expect("log loads as a stream");
    assert!(report.is_clean(), "lints flagged the stamp-order log:\n{report}");
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn cache_hits_are_stamped_before_the_response_threads() {
    check(Frontend::Threads, 57.0);
}

#[cfg(unix)]
#[test]
fn cache_hits_are_stamped_before_the_response_evloop() {
    check(Frontend::Evloop, 57.5);
}
