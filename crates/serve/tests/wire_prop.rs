//! Property tests for the wire format: randomly generated requests and
//! responses must survive serialize → `mosc_analyze::json` parse →
//! deserialize bit-for-bit, including escaped strings and float members.

use mosc_analyze::json::Value;
use mosc_core::{SolveOptions, SolverKind, SolverStats};
use mosc_serve::proto::{
    canonical_json, parse_request, request_to_json, BatchRequest, BatchResponse,
    BatchVariantRequest, ErrorKind, HelloResponse, Request, Response, ServeStats, SolveRequest,
    SolveResponse, TraceContext,
};
use mosc_testutil::{propcheck, Rng64};
use std::time::Duration;

/// Random string over a charset that exercises every escape path of
/// `json_string` (quotes, backslashes, control characters, non-ASCII).
fn random_string(rng: &mut Rng64) -> String {
    const CHARS: &[char] =
        &['a', 'Z', '0', '-', '_', '"', '\\', '\n', '\t', '\r', '\u{1}', 'µ', '€', ' '];
    let len = rng.below(12) as usize;
    (0..len).map(|_| CHARS[rng.below(CHARS.len() as u64) as usize]).collect()
}

/// A random dyadic rational with a short exact decimal expansion, so the
/// shortest-round-trip writer and any correct decimal parser agree exactly.
fn random_f64(rng: &mut Rng64) -> f64 {
    (rng.below(1 << 20) as f64) / 256.0
}

/// An optional random v2 trace context: absent half the time (the v1 wire
/// shape), otherwise a random nonzero trace id with a random parent span.
fn random_trace(rng: &mut Rng64) -> Option<TraceContext> {
    if rng.below(2) == 0 {
        return None;
    }
    let trace_id = ((u128::from(rng.below(u64::MAX)) << 64) | u128::from(rng.below(u64::MAX))) | 1;
    Some(TraceContext { trace_id, parent_id: rng.below(u64::MAX) })
}

fn random_kind(rng: &mut Rng64) -> SolverKind {
    let all = SolverKind::all();
    all[rng.below(all.len() as u64) as usize]
}

fn random_platform(rng: &mut Rng64) -> Value {
    let mut members = vec![
        ("rows".to_owned(), Value::Number(1.0 + rng.below(3) as f64)),
        ("cols".to_owned(), Value::Number(1.0 + rng.below(3) as f64)),
        ("t_max_c".to_owned(), Value::Number(40.0 + random_f64(rng) % 40.0)),
        (
            "levels".to_owned(),
            Value::Array(vec![Value::Number(0.6), Value::Number(random_f64(rng))]),
        ),
    ];
    rng.shuffle(&mut members);
    Value::Object(members)
}

fn random_options(rng: &mut Rng64) -> SolveOptions {
    SolveOptions {
        threads: rng.below(9) as usize,
        max_m: 1 + rng.below(4096) as usize,
        deadline: if rng.below(2) == 0 {
            None
        } else {
            Some(Duration::from_millis(rng.below(60_000)))
        },
        base_period: 0.001 + random_f64(rng),
        m_patience: 1 + rng.below(16) as usize,
        t_unit_divisor: 1 + rng.below(500) as usize,
        phase_steps: 1 + rng.below(16) as usize,
        samples: 1 + rng.below(500) as usize,
        refill_divisor: 1 + rng.below(200) as usize,
        governor: mosc_core::reactive::GovernorOptions {
            control_period: 0.001 + random_f64(rng),
            guard_band: random_f64(rng),
            upgrade_band: random_f64(rng),
            horizon: 1.0 + random_f64(rng),
            warmup: random_f64(rng),
        },
    }
}

#[test]
fn solve_requests_round_trip_through_the_wire() {
    propcheck("solve request wire round-trip", |rng| {
        let req = SolveRequest {
            id: random_string(rng),
            kind: random_kind(rng),
            platform: random_platform(rng),
            options: random_options(rng),
            want_schedule: rng.below(2) == 1,
            trace: random_trace(rng),
        };
        let line = request_to_json(&req);
        let parsed = match parse_request(&line) {
            Ok(Request::Solve(r)) => r,
            other => panic!("expected a solve request back, got {other:?}\nline: {line}"),
        };
        assert_eq!(parsed.id, req.id, "line: {line}");
        assert_eq!(parsed.kind, req.kind, "line: {line}");
        assert_eq!(parsed.options, req.options, "line: {line}");
        assert_eq!(parsed.want_schedule, req.want_schedule, "line: {line}");
        assert_eq!(parsed.trace, req.trace, "line: {line}");
        assert_eq!(canonical_json(&parsed.platform), canonical_json(&req.platform), "line: {line}");
    });
}

#[test]
fn solve_responses_round_trip_through_the_wire() {
    propcheck("solve response wire round-trip", |rng| {
        let response = SolveResponse {
            id: random_string(rng),
            solver: random_kind(rng),
            throughput: random_f64(rng),
            peak_c: random_f64(rng),
            feasible: rng.below(2) == 1,
            m: rng.below(100_000) as usize,
            wall_ms: random_f64(rng),
            cached: rng.below(2) == 1,
            stats: SolverStats {
                explored: rng.below(1 << 32),
                thermal_prunes: rng.below(1 << 32),
                throughput_prunes: rng.below(1 << 32),
                transitions: rng.below(1 << 32),
                violation_time: random_f64(rng),
            },
            schedule: if rng.below(2) == 0 { None } else { Some(random_string(rng)) },
        };
        let line = response.to_json();
        let doc = Value::parse(&line).unwrap_or_else(|e| panic!("parse {line}: {e:?}"));
        let parsed =
            SolveResponse::from_value(&doc).unwrap_or_else(|e| panic!("from_value {line}: {e:?}"));
        assert_eq!(parsed, response, "line: {line}");
    });
}

fn random_solve_response(rng: &mut Rng64) -> SolveResponse {
    SolveResponse {
        id: random_string(rng),
        solver: random_kind(rng),
        throughput: random_f64(rng),
        peak_c: random_f64(rng),
        feasible: rng.below(2) == 1,
        m: rng.below(100_000) as usize,
        wall_ms: random_f64(rng),
        cached: rng.below(2) == 1,
        stats: SolverStats {
            explored: rng.below(1 << 32),
            thermal_prunes: rng.below(1 << 32),
            throughput_prunes: rng.below(1 << 32),
            transitions: rng.below(1 << 32),
            violation_time: random_f64(rng),
        },
        schedule: if rng.below(2) == 0 { None } else { Some(random_string(rng)) },
    }
}

fn random_error_kind(rng: &mut Rng64) -> ErrorKind {
    const ALL: &[ErrorKind] = &[
        ErrorKind::Parse,
        ErrorKind::Unsupported,
        ErrorKind::Usage,
        ErrorKind::Infeasible,
        ErrorKind::Deadline,
        ErrorKind::Internal,
    ];
    ALL[rng.below(ALL.len() as u64) as usize]
}

fn random_serve_stats(rng: &mut Rng64) -> ServeStats {
    let mut count = || rng.below(1 << 32);
    ServeStats {
        requests: count(),
        responses: count(),
        cache_hits: count(),
        cache_misses: count(),
        cache_evictions: count(),
        rejected: count(),
        deadline_exceeded: count(),
        malformed: count(),
        queue_depth: count(),
        queue_peak: count(),
        cache_len: count(),
        uptime_s: random_f64(rng),
        req_per_s: random_f64(rng),
        p50_ms: random_f64(rng),
        p90_ms: random_f64(rng),
        p99_ms: random_f64(rng),
        p999_ms: random_f64(rng),
        max_ms: random_f64(rng),
        slow_exemplar: if rng.below(2) == 0 {
            0
        } else {
            (u128::from(rng.below(u64::MAX)) << 64) | u128::from(rng.below(u64::MAX))
        },
    }
}

/// A random response of every shape the daemon can write, including batch
/// results (which may only nest ok/error shapes, as on the wire).
fn random_response(rng: &mut Rng64) -> Response {
    match rng.below(9) {
        0 => Response::Ok(random_solve_response(rng)),
        1 => Response::Batch(BatchResponse {
            id: random_string(rng),
            registry_warm: rng.below(2) == 1,
            results: (0..rng.below(4))
                .map(|_| {
                    if rng.below(2) == 0 {
                        Response::Ok(random_solve_response(rng))
                    } else {
                        Response::Error {
                            id: random_string(rng),
                            kind: random_error_kind(rng),
                            message: random_string(rng),
                        }
                    }
                })
                .collect(),
        }),
        2 => Response::Error {
            id: random_string(rng),
            kind: random_error_kind(rng),
            message: random_string(rng),
        },
        3 => Response::Overloaded { id: random_string(rng) },
        4 => Response::Pong { id: random_string(rng) },
        5 => Response::Stats { id: random_string(rng), stats: random_serve_stats(rng) },
        6 => Response::Metrics { id: random_string(rng), text: random_string(rng) },
        7 => Response::ShuttingDown { id: random_string(rng) },
        _ => Response::Hello(HelloResponse {
            id: random_string(rng),
            server: random_string(rng),
            version: rng.below(1 << 16) as u32,
            versions: (0..1 + rng.below(4)).map(|_| rng.below(1 << 16) as u32).collect(),
            ops: (0..rng.below(5)).map(|_| random_string(rng)).collect(),
        }),
    }
}

#[test]
fn responses_of_every_shape_round_trip_through_the_wire() {
    propcheck("typed response wire round-trip", |rng| {
        let response = random_response(rng);
        let line = response.to_json();
        let parsed = Response::parse(&line).unwrap_or_else(|e| panic!("parse {line}: {e:?}"));
        assert_eq!(parsed, response, "line: {line}");
        assert_eq!(parsed.id(), response.id());
    });
}

/// A random request of every op, matching what [`Request::to_json`] can
/// express.
fn random_request(rng: &mut Rng64) -> Request {
    match rng.below(7) {
        0 => Request::Solve(SolveRequest {
            id: random_string(rng),
            kind: random_kind(rng),
            platform: random_platform(rng),
            options: random_options(rng),
            want_schedule: rng.below(2) == 1,
            trace: random_trace(rng),
        }),
        1 => Request::SolveBatch(BatchRequest {
            id: random_string(rng),
            platform: random_platform(rng),
            variants: (0..1 + rng.below(4))
                .map(|_| BatchVariantRequest {
                    kind: random_kind(rng),
                    options: random_options(rng),
                    want_schedule: rng.below(2) == 1,
                })
                .collect(),
            trace: random_trace(rng),
        }),
        2 => Request::Ping { id: random_string(rng) },
        3 => Request::Stats { id: random_string(rng) },
        4 => Request::Metrics { id: random_string(rng) },
        5 => Request::Shutdown { id: random_string(rng) },
        _ => Request::Hello {
            id: random_string(rng),
            max_version: if rng.below(2) == 0 { None } else { Some(1 + rng.below(16) as u32) },
        },
    }
}

#[test]
fn requests_of_every_op_round_trip_through_the_wire() {
    propcheck("typed request wire round-trip", |rng| {
        let req = random_request(rng);
        let line = req.to_json();
        let parsed = parse_request(&line).unwrap_or_else(|e| panic!("parse_request {line}: {e:?}"));
        // The serializers canonicalize platform member order (the batch
        // platform is the registry preimage), so value equality is modulo
        // that; the wire form itself must be a fixpoint.
        assert_eq!(parsed.to_json(), line, "serialize→parse→serialize must be a fixpoint");
        assert_eq!(parsed.id(), req.id());
        match (&parsed, &req) {
            (Request::Solve(p), Request::Solve(r)) => {
                assert_eq!(
                    canonical_json(&p.platform),
                    canonical_json(&r.platform),
                    "line: {line}"
                );
                assert_eq!(
                    (&p.kind, &p.options, p.want_schedule, &p.trace),
                    (&r.kind, &r.options, r.want_schedule, &r.trace)
                );
            }
            (Request::SolveBatch(p), Request::SolveBatch(r)) => {
                assert_eq!(
                    canonical_json(&p.platform),
                    canonical_json(&r.platform),
                    "line: {line}"
                );
                assert_eq!(p.variants, r.variants, "line: {line}");
                assert_eq!(p.trace, r.trace, "line: {line}");
            }
            _ => assert_eq!(parsed, req, "line: {line}"),
        }
    });
}
