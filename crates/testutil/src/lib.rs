//! Deterministic randomness and a mini property-testing harness.
//!
//! The workspace builds in fully offline environments, so it cannot pull in
//! `rand` or `proptest`. This crate provides the two pieces the experiment
//! suite and the test suites actually need:
//!
//! * [`Rng64`] — a seeded `SplitMix64` generator with the handful of sampling
//!   methods the workload generators use (`gen_range` over integer and float
//!   ranges, Fisher–Yates [`Rng64::shuffle`]);
//! * [`propcheck`] / [`propcheck_cases`] — run a property over many seeded
//!   cases and report the first failing seed so a failure reproduces exactly.

pub mod prop;
pub mod rng;

pub use prop::{propcheck, propcheck_cases};
pub use rng::{Rng64, SampleRange};
