//! A mini property-testing harness.
//!
//! The shape mirrors how the workspace used `proptest`: generate random
//! inputs from a seeded [`Rng64`], assert a property, repeat. On failure the
//! panic message carries the case index and derived seed so the exact case
//! replays by construction (the harness is fully deterministic).
//!
//! ```
//! use mosc_testutil::propcheck;
//!
//! propcheck("addition commutes", |rng| {
//!     let a = rng.gen_range(0..1000usize);
//!     let b = rng.gen_range(0..1000usize);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng64;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Runs `property` over [`DEFAULT_CASES`] seeded cases.
///
/// # Panics
/// Re-raises the property's panic, prefixed with the failing case's seed.
pub fn propcheck(name: &str, property: impl FnMut(&mut Rng64)) {
    propcheck_cases(name, DEFAULT_CASES, property);
}

/// Runs `property` over `cases` seeded cases. Each case gets an independent
/// generator seeded from the property name and the case index, so adding or
/// reordering cases elsewhere never shifts this property's inputs.
///
/// # Panics
/// Panics (after printing the failing seed) when any case fails.
pub fn propcheck_cases(name: &str, cases: usize, mut property: impl FnMut(&mut Rng64)) {
    for case in 0..cases {
        let seed = fnv1a(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng64::seed_from_u64(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{name}' failed at case {case} (seed {seed:#018x}): {msg}");
        }
    }
}

/// FNV-1a over the property name: stable across runs and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        propcheck_cases("counts", 10, |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_reports_seed() {
        let caught = std::panic::catch_unwind(|| {
            propcheck_cases("always fails", 3, |_| panic!("boom"));
        });
        let payload = caught.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always fails"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<u64> = Vec::new();
        propcheck_cases("det", 5, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        propcheck_cases("det", 5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        let mut other: Vec<u64> = Vec::new();
        propcheck_cases("det-other", 5, |rng| other.push(rng.next_u64()));
        assert_ne!(first, other);
    }
}
