//! A small seeded pseudo-random generator (`SplitMix64`).
//!
//! `SplitMix64` passes `BigCrush`, needs no warm-up, and any 64-bit seed is a
//! valid state — exactly the properties a reproducible experiment suite
//! wants. The API mirrors the subset of `rand` the workspace used:
//! `gen_range` accepts half-open and inclusive ranges over `usize` and
//! `f64`, dispatched through the [`SampleRange`] trait.

use std::ops::{Range, RangeInclusive};

/// Seeded `SplitMix64` generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Every seed is valid.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; accepts `a..b` and `a..=b` over `usize`
    /// and `f64`, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` via Lemire-style rejection (unbiased).
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone keeps the multiply-shift map unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = u128::from(v) * u128::from(bound);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// Range types [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below(span + 1) as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // next_f64 is in [0, 1); the closed upper end is reached only up to
        // rounding, which is indistinguishable for the float use here.
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(8);
        assert_ne!(Rng64::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::seed_from_u64(2);
        for _ in 0..1000 {
            let a = r.gen_range(3..10usize);
            assert!((3..10).contains(&a));
            let b = r.gen_range(5..=5usize);
            assert_eq!(b, 5);
            let c = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng64::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng64::seed_from_u64(5);
        let _ = r.gen_range(3..3usize);
    }
}
