//! Physical parameterization of the RC network.

use crate::{Result, ThermalError};

/// Material constants from which an [`RcConfig`] can be derived. Defaults are
/// `HotSpot`-class values for a 65 nm die with copper spreader and a fixed-size
/// finned heat sink.
///
/// The one deliberately *non*-per-core quantity is `r_convec_total`: like
/// `HotSpot`'s sink, the heat sink does not grow with the die, so its
/// convection resistance is a property of the whole package. This is what
/// makes larger core counts progressively more temperature-constrained —
/// the regime every figure in the paper lives in (2-core chips saturate at
/// `v_max` by 55 °C while 6- and 9-core chips stay constrained at 65 °C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Materials {
    /// Silicon thermal conductivity (W/(m·K)).
    pub k_si: f64,
    /// Silicon volumetric heat capacity (J/(m³·K)).
    pub c_v_si: f64,
    /// Die thickness (m).
    pub t_die: f64,
    /// Thermal-interface-material conductivity (W/(m·K)).
    pub k_tim: f64,
    /// TIM thickness (m).
    pub t_tim: f64,
    /// Copper conductivity (W/(m·K)).
    pub k_cu: f64,
    /// Copper volumetric heat capacity (J/(m³·K)).
    pub c_v_cu: f64,
    /// Heat-spreader thickness (m).
    pub t_spreader: f64,
    /// Sink base-slab thickness (m); fins are folded into `r_convec_total`
    /// and the `sink_mass_factor`.
    pub t_sink_base: f64,
    /// Total sink→ambient convection resistance for the whole package (K/W).
    pub r_convec_total: f64,
    /// Multiplier folding the fin mass into the sink base capacitance.
    pub sink_mass_factor: f64,
    /// Multiplier on lateral conduction within the sink base, accounting for
    /// the base being much wider than the die footprint.
    pub sink_spread_factor: f64,
    /// Inter-layer bond resistance per unit area for 3-D stacks (K·m²/W).
    pub r_interlayer_area: f64,
}

impl Default for Materials {
    fn default() -> Self {
        Self {
            k_si: 100.0,
            c_v_si: 1.75e6,
            t_die: 1.5e-4,
            k_tim: 20.0,
            t_tim: 2.0e-5,
            k_cu: 400.0,
            c_v_cu: 3.55e6,
            t_spreader: 1.0e-3,
            t_sink_base: 2.0e-3,
            r_convec_total: 0.30,
            sink_mass_factor: 130.0,
            sink_spread_factor: 20.0,
            r_interlayer_area: 1.6e-6,
        }
    }
}

impl Materials {
    /// A deliberately weaker cooling solution (`r_convec_total = 0.56 K/W`,
    /// a budget cooler) that reproduces the operating point of the paper's
    /// Section III motivating example: a 3-core chip at `T_max` = 65 °C whose
    /// ideal continuous voltages land near 1.17–1.21 V.
    #[must_use]
    pub fn budget_cooler() -> Self {
        Self { r_convec_total: 0.56, ..Self::default() }
    }

    /// A low-thermal-mass package (fanless mobile class: thin sink slab, no
    /// fin mass) whose dominant time constant sits at a few **seconds**
    /// rather than tens of seconds. The paper's transient experiments
    /// (Figs. 3–5: 1–10 s periods, stable status reached within tens of
    /// seconds, double-digit peak spread across phase alignments) operate in
    /// this regime; the heavyweight default cooler would average those
    /// second-scale swings away in its sink mass.
    #[must_use]
    pub fn responsive_package() -> Self {
        Self { r_convec_total: 0.56, sink_mass_factor: 3.0, ..Self::default() }
    }

    /// Derives the lumped per-area/per-length RC parameters.
    ///
    /// # Errors
    /// Returns [`ThermalError::InvalidParameter`] for non-positive constants.
    pub fn rc_config(&self) -> Result<RcConfig> {
        for (v, what) in [
            (self.k_si, "k_si must be > 0"),
            (self.c_v_si, "c_v_si must be > 0"),
            (self.t_die, "t_die must be > 0"),
            (self.k_tim, "k_tim must be > 0"),
            (self.t_tim, "t_tim must be > 0"),
            (self.k_cu, "k_cu must be > 0"),
            (self.c_v_cu, "c_v_cu must be > 0"),
            (self.t_spreader, "t_spreader must be > 0"),
            (self.t_sink_base, "t_sink_base must be > 0"),
            (self.r_convec_total, "r_convec_total must be > 0"),
            (self.sink_mass_factor, "sink_mass_factor must be > 0"),
            (self.sink_spread_factor, "sink_spread_factor must be > 0"),
            (self.r_interlayer_area, "r_interlayer_area must be > 0"),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ThermalError::InvalidParameter { what });
            }
        }
        Ok(RcConfig {
            // Die→spreader: half the die, the TIM, and half the spreader in series.
            r_die_spreader_area: self.t_die / (2.0 * self.k_si)
                + self.t_tim / self.k_tim
                + self.t_spreader / (2.0 * self.k_cu),
            // Spreader→sink: remaining spreader half plus half the sink base.
            r_spreader_sink_area: self.t_spreader / (2.0 * self.k_cu)
                + self.t_sink_base / (2.0 * self.k_cu),
            r_sink_ambient_total: self.r_convec_total,
            r_interlayer_area: self.r_interlayer_area,
            // Lateral conductance per meter of shared edge: k·thickness, with
            // the center-to-center distance cancelling for uniform square
            // tiles (g = k·t·edge/dist and dist ≈ edge).
            g_lat_die_per_m: self.k_si * self.t_die / 4.0e-3,
            g_lat_spreader_per_m: self.k_cu * self.t_spreader / 4.0e-3,
            g_lat_sink_per_m: self.k_cu * self.t_sink_base * self.sink_spread_factor / 4.0e-3,
            c_die_area: self.c_v_si * self.t_die,
            c_spreader_area: self.c_v_cu * self.t_spreader,
            c_sink_area: self.c_v_cu * self.t_sink_base * self.sink_mass_factor,
        })
    }
}

/// Lumped RC parameters. Vertical conduction paths and capacitances are
/// normalized per unit area, lateral coupling per unit shared-edge length, so
/// one config serves heterogeneous tile sizes. The sink→ambient convection
/// resistance is a **whole-package total**: each sink-side core's leg gets
/// an area-proportional share (legs in parallel reconstruct the total),
/// modeling a fixed-size heat sink shared by however many cores the die has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcConfig {
    /// Die→spreader vertical resistance × area (K·m²/W).
    pub r_die_spreader_area: f64,
    /// Spreader→sink vertical resistance × area (K·m²/W).
    pub r_spreader_sink_area: f64,
    /// Total sink→ambient (convection) resistance for the package (K/W).
    pub r_sink_ambient_total: f64,
    /// 3-D inter-layer bond resistance × area (K·m²/W).
    pub r_interlayer_area: f64,
    /// Lateral die-die conductance per meter of shared edge (W/(K·m)).
    pub g_lat_die_per_m: f64,
    /// Lateral spreader-spreader conductance per meter (W/(K·m)).
    pub g_lat_spreader_per_m: f64,
    /// Lateral sink-sink conductance per meter (W/(K·m)).
    pub g_lat_sink_per_m: f64,
    /// Die capacitance per unit area (J/(K·m²)).
    pub c_die_area: f64,
    /// Spreader capacitance per unit area (J/(K·m²)).
    pub c_spreader_area: f64,
    /// Sink capacitance per unit area (J/(K·m²)).
    pub c_sink_area: f64,
}

impl Default for RcConfig {
    /// The calibrated 65 nm preset used by the experiment suite (derived
    /// from [`Materials::default`]).
    fn default() -> Self {
        Materials::default().rc_config().expect("default materials are valid")
    }
}

impl RcConfig {
    /// The Section III motivating-example preset (see
    /// [`Materials::budget_cooler`]).
    #[must_use]
    pub fn budget_cooler() -> Self {
        Materials::budget_cooler().rc_config().expect("preset materials are valid")
    }

    /// The seconds-scale transient preset (see
    /// [`Materials::responsive_package`]).
    #[must_use]
    pub fn responsive_package() -> Self {
        Materials::responsive_package().rc_config().expect("preset materials are valid")
    }

    /// Validates all parameters are finite and positive.
    ///
    /// # Errors
    /// Returns [`ThermalError::InvalidParameter`] naming the offender.
    pub fn validate(&self) -> Result<()> {
        for (v, what) in [
            (self.r_die_spreader_area, "r_die_spreader_area must be > 0"),
            (self.r_spreader_sink_area, "r_spreader_sink_area must be > 0"),
            (self.r_sink_ambient_total, "r_sink_ambient_total must be > 0"),
            (self.r_interlayer_area, "r_interlayer_area must be > 0"),
            (self.g_lat_die_per_m, "g_lat_die_per_m must be > 0"),
            (self.g_lat_spreader_per_m, "g_lat_spreader_per_m must be > 0"),
            (self.g_lat_sink_per_m, "g_lat_sink_per_m must be > 0"),
            (self.c_die_area, "c_die_area must be > 0"),
            (self.c_spreader_area, "c_spreader_area must be > 0"),
            (self.c_sink_area, "c_sink_area must be > 0"),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ThermalError::InvalidParameter { what });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        RcConfig::default().validate().unwrap();
    }

    #[test]
    fn derived_vertical_resistances_are_plausible() {
        let cfg = RcConfig::default();
        let area = 16e-6; // 4x4 mm core
        let r_v = (cfg.r_die_spreader_area + cfg.r_spreader_sink_area) / area;
        // Per-core conduction path: a fraction of a K/W.
        assert!(r_v > 0.05 && r_v < 2.0, "r_v = {r_v}");
        assert!(cfg.r_sink_ambient_total > 0.1 && cfg.r_sink_ambient_total < 1.0);
    }

    #[test]
    fn budget_cooler_is_weaker() {
        let base = RcConfig::default();
        let weak = RcConfig::budget_cooler();
        assert!(weak.r_sink_ambient_total > base.r_sink_ambient_total);
        weak.validate().unwrap();
    }

    #[test]
    fn materials_rejects_nonpositive() {
        let m = Materials { k_si: 0.0, ..Materials::default() };
        assert!(m.rc_config().is_err());
        let m = Materials { t_die: f64::NAN, ..Materials::default() };
        assert!(m.rc_config().is_err());
    }

    #[test]
    fn validate_flags_each_field() {
        let cfg = RcConfig { c_sink_area: -1.0, ..RcConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = RcConfig { r_sink_ambient_total: 0.0, ..RcConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn die_time_constant_is_milliseconds() {
        // τ_die = C_die · R_die→spreader should sit in the 0.1–100 ms band —
        // the regime in which m-Oscillating has its effect.
        let cfg = RcConfig::default();
        let tau = cfg.c_die_area * cfg.r_die_spreader_area; // area cancels
        assert!(tau > 1e-4 && tau < 0.1, "tau_die = {tau}");
    }

    #[test]
    fn sink_time_constant_is_tens_of_seconds() {
        // For a 3-core chip: τ = (c_sink_area·A_total)·r_total.
        let cfg = RcConfig::default();
        let a_total = 3.0 * 16e-6;
        let tau = cfg.c_sink_area * a_total * cfg.r_sink_ambient_total;
        assert!(tau > 5.0 && tau < 200.0, "tau_sink = {tau}");
    }
}
