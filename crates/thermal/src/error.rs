//! Error type for thermal-model construction and evaluation.

use std::fmt;

/// Errors produced while building or evaluating thermal models.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The floorplan was empty or geometrically inconsistent.
    BadFloorplan {
        /// Human-readable description.
        what: String,
    },
    /// A physical parameter failed validation.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// The assembled state matrix `A` is not strictly stable: its largest
    /// eigenvalue is the payload. Usually means the leakage sensitivity `β`
    /// overwhelms the network's ambient conductance (thermal runaway).
    Unstable {
        /// Largest eigenvalue of `A` (must be `< 0` for a usable model).
        max_eigenvalue: f64,
    },
    /// A power/temperature vector had the wrong length.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An underlying linear-algebra kernel failed.
    Linalg(mosc_linalg::LinalgError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadFloorplan { what } => write!(f, "bad floorplan: {what}"),
            Self::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            Self::Unstable { max_eigenvalue } => write!(
                f,
                "thermal model unstable: max eigenvalue {max_eigenvalue:.3e} >= 0 \
                 (leakage beta too large for the network's ambient conductance)"
            ),
            Self::DimensionMismatch { expected, actual, op } => {
                write!(f, "{op}: expected length {expected}, got {actual}")
            }
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mosc_linalg::LinalgError> for ThermalError {
    fn from(e: mosc_linalg::LinalgError) -> Self {
        Self::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_cause() {
        let e = ThermalError::Unstable { max_eigenvalue: 0.5 };
        assert!(e.to_string().contains("unstable"));
        let e = ThermalError::DimensionMismatch { expected: 3, actual: 2, op: "steady_state" };
        assert!(e.to_string().contains("expected length 3"));
    }

    #[test]
    fn wraps_linalg_errors() {
        let e: ThermalError = mosc_linalg::LinalgError::Singular { pivot: 0 }.into();
        assert!(matches!(e, ThermalError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
