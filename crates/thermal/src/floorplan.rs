//! Core-level floorplans.

use crate::{Result, ThermalError};

/// Geometry of one core tile. Coordinates are the lower-left corner in
/// meters; `layer` indexes the die layer for 3-D stacks (0 = closest to the
/// heat sink, matching the face-down convention where stacking *away* from
/// the sink lengthens the heat-removal path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreGeom {
    /// Lower-left x coordinate (m).
    pub x: f64,
    /// Lower-left y coordinate (m).
    pub y: f64,
    /// Width (m).
    pub w: f64,
    /// Height (m).
    pub h: f64,
    /// Die layer index (0 = sink side).
    pub layer: usize,
}

impl CoreGeom {
    /// Tile area in m².
    #[inline]
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Center coordinates.
    #[inline]
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Length of the edge shared with `other` on the same layer (0 when not
    /// edge-adjacent). Corner contact counts as zero.
    #[must_use]
    pub fn shared_edge(&self, other: &Self) -> f64 {
        if self.layer != other.layer {
            return 0.0;
        }
        let eps = 1e-9;
        let x_overlap = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let y_overlap = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        let touch_x =
            ((self.x + self.w) - other.x).abs() < eps || ((other.x + other.w) - self.x).abs() < eps;
        let touch_y =
            ((self.y + self.h) - other.y).abs() < eps || ((other.y + other.h) - self.y).abs() < eps;
        if touch_x && y_overlap > eps {
            y_overlap
        } else if touch_y && x_overlap > eps {
            x_overlap
        } else {
            0.0
        }
    }

    /// `true` when the footprints overlap in x/y (used for 3-D vertical
    /// coupling between consecutive layers).
    #[must_use]
    pub fn overlaps_footprint(&self, other: &Self) -> bool {
        let eps = 1e-9;
        let x_overlap = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let y_overlap = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        x_overlap > eps && y_overlap > eps
    }
}

/// A core-level floorplan: a list of rectangular tiles across one or more
/// die layers. The paper's evaluation uses 2×1, 3×1, 3×2 and 3×3 grids of
/// 4×4 mm cores; [`Floorplan::stack3d`] supports the 3-D configurations the
/// introduction motivates.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    cores: Vec<CoreGeom>,
    layers: usize,
}

/// The paper's core tile edge: 4 mm.
pub const PAPER_CORE_EDGE: f64 = 4.0e-3;

impl Floorplan {
    /// Builds a floorplan from explicit tiles.
    ///
    /// # Errors
    /// Rejects empty plans and degenerate tile geometry.
    pub fn new(cores: Vec<CoreGeom>) -> Result<Self> {
        if cores.is_empty() {
            return Err(ThermalError::BadFloorplan { what: "no cores".into() });
        }
        for (i, c) in cores.iter().enumerate() {
            if !(c.w.is_finite() && c.h.is_finite() && c.x.is_finite() && c.y.is_finite())
                || c.w <= 0.0
                || c.h <= 0.0
            {
                return Err(ThermalError::BadFloorplan {
                    what: format!("core {i} has degenerate geometry {c:?}"),
                });
            }
        }
        let layers = cores.iter().map(|c| c.layer).max().unwrap_or(0) + 1;
        Ok(Self { cores, layers })
    }

    /// `rows × cols` single-layer grid of uniform tiles.
    ///
    /// # Errors
    /// Rejects zero dimensions.
    pub fn grid(rows: usize, cols: usize, core_w: f64, core_h: f64) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ThermalError::BadFloorplan { what: "grid with zero dimension".into() });
        }
        let mut cores = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                cores.push(CoreGeom {
                    x: c as f64 * core_w,
                    y: r as f64 * core_h,
                    w: core_w,
                    h: core_h,
                    layer: 0,
                });
            }
        }
        Self::new(cores)
    }

    /// The paper's configurations: `grid` with 4×4 mm tiles. `(rows, cols)`
    /// of (1,2), (1,3), (2,3), (3,3) give the 2-, 3-, 6- and 9-core
    /// platforms of Section VI.
    ///
    /// # Errors
    /// Rejects zero dimensions.
    pub fn paper_grid(rows: usize, cols: usize) -> Result<Self> {
        Self::grid(rows, cols, PAPER_CORE_EDGE, PAPER_CORE_EDGE)
    }

    /// A 3-D stack: `layers` copies of a `rows × cols` grid, aligned
    /// vertically. Layer 0 is nearest the sink.
    ///
    /// # Errors
    /// Rejects zero dimensions.
    pub fn stack3d(
        layers: usize,
        rows: usize,
        cols: usize,
        core_w: f64,
        core_h: f64,
    ) -> Result<Self> {
        if layers == 0 {
            return Err(ThermalError::BadFloorplan { what: "stack with zero layers".into() });
        }
        let base = Self::grid(rows, cols, core_w, core_h)?;
        let mut cores = Vec::with_capacity(layers * base.cores.len());
        for l in 0..layers {
            for c in &base.cores {
                cores.push(CoreGeom { layer: l, ..*c });
            }
        }
        Self::new(cores)
    }

    /// Number of cores (across all layers).
    #[inline]
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of die layers.
    #[inline]
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers
    }

    /// Tile list.
    #[inline]
    #[must_use]
    pub fn cores(&self) -> &[CoreGeom] {
        &self.cores
    }

    /// Same-layer edge adjacencies as `(i, j, shared_edge_length)` with
    /// `i < j`.
    #[must_use]
    pub fn lateral_adjacency(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.cores.len() {
            for j in (i + 1)..self.cores.len() {
                let s = self.cores[i].shared_edge(&self.cores[j]);
                if s > 0.0 {
                    out.push((i, j, s));
                }
            }
        }
        out
    }

    /// Vertical adjacencies between consecutive layers as `(lower, upper)`
    /// pairs (`lower.layer + 1 == upper.layer`, overlapping footprints).
    #[must_use]
    pub fn vertical_adjacency(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.cores.len() {
            for j in 0..self.cores.len() {
                let (a, b) = (&self.cores[i], &self.cores[j]);
                if a.layer + 1 == b.layer && a.overlaps_footprint(b) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Indices of cores on the sink-side layer (layer 0), the only ones with
    /// a direct path into the heat spreader.
    #[must_use]
    pub fn sink_side_cores(&self) -> Vec<usize> {
        self.cores.iter().enumerate().filter(|(_, c)| c.layer == 0).map(|(i, _)| i).collect()
    }

    /// Parses a `HotSpot` `.flp` floorplan file: one unit per line,
    /// `<name> <width-m> <height-m> <left-x-m> <bottom-y-m>`, `#` comments.
    /// Unit names are returned alongside the floorplan, in tile order.
    ///
    /// # Errors
    /// Returns [`ThermalError::BadFloorplan`] naming the first malformed
    /// line.
    pub fn from_hotspot_flp(text: &str) -> Result<(Self, Vec<String>)> {
        let mut cores = Vec::new();
        let mut names = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 5 {
                return Err(ThermalError::BadFloorplan {
                    what: format!(
                        "line {}: expected '<name> <w> <h> <x> <y>', got '{line}'",
                        lineno + 1
                    ),
                });
            }
            let parse = |s: &str, what: &str| -> Result<f64> {
                s.parse().map_err(|_| ThermalError::BadFloorplan {
                    what: format!("line {}: cannot parse {what} '{s}'", lineno + 1),
                })
            };
            let w = parse(fields[1], "width")?;
            let h = parse(fields[2], "height")?;
            let x = parse(fields[3], "x")?;
            let y = parse(fields[4], "y")?;
            names.push(fields[0].to_string());
            cores.push(CoreGeom { x, y, w, h, layer: 0 });
        }
        Ok((Self::new(cores)?, names))
    }

    /// Renders the floorplan in `HotSpot` `.flp` format (layer 0 only; `.flp`
    /// is a 2-D format).
    #[must_use]
    pub fn to_hotspot_flp(&self) -> String {
        let mut out = String::from("# generated by mosc-thermal\n");
        for (i, c) in self.cores.iter().enumerate() {
            if c.layer != 0 {
                continue;
            }
            out.push_str(&format!("core{i}\t{:e}\t{:e}\t{:e}\t{:e}\n", c.w, c.h, c.x, c.y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let f = Floorplan::paper_grid(3, 3).unwrap();
        assert_eq!(f.n_cores(), 9);
        assert_eq!(f.n_layers(), 1);
        let c = f.cores()[4]; // center of 3x3
        assert!((c.x - PAPER_CORE_EDGE).abs() < 1e-12);
        assert!((c.y - PAPER_CORE_EDGE).abs() < 1e-12);
        assert!((c.area() - 16e-6).abs() < 1e-12);
    }

    #[test]
    fn grid_rejects_zero() {
        assert!(Floorplan::grid(0, 3, 1e-3, 1e-3).is_err());
        assert!(Floorplan::new(vec![]).is_err());
    }

    #[test]
    fn degenerate_tiles_rejected() {
        let bad = CoreGeom { x: 0.0, y: 0.0, w: -1.0, h: 1.0, layer: 0 };
        assert!(Floorplan::new(vec![bad]).is_err());
        let nan = CoreGeom { x: f64::NAN, y: 0.0, w: 1.0, h: 1.0, layer: 0 };
        assert!(Floorplan::new(vec![nan]).is_err());
    }

    #[test]
    fn adjacency_counts_for_grids() {
        // 3x3 grid: 12 shared edges (6 horizontal + 6 vertical pairs).
        let f = Floorplan::paper_grid(3, 3).unwrap();
        let adj = f.lateral_adjacency();
        assert_eq!(adj.len(), 12);
        for &(_, _, s) in &adj {
            assert!((s - PAPER_CORE_EDGE).abs() < 1e-12);
        }
        // 1x2 grid: single adjacency.
        assert_eq!(Floorplan::paper_grid(1, 2).unwrap().lateral_adjacency().len(), 1);
    }

    #[test]
    fn diagonal_tiles_do_not_count_as_adjacent() {
        let a = CoreGeom { x: 0.0, y: 0.0, w: 1.0, h: 1.0, layer: 0 };
        let b = CoreGeom { x: 1.0, y: 1.0, w: 1.0, h: 1.0, layer: 0 };
        assert_eq!(a.shared_edge(&b), 0.0);
        let f = Floorplan::new(vec![a, b]).unwrap();
        assert!(f.lateral_adjacency().is_empty());
    }

    #[test]
    fn cross_layer_tiles_share_no_edge() {
        let a = CoreGeom { x: 0.0, y: 0.0, w: 1.0, h: 1.0, layer: 0 };
        let b = CoreGeom { x: 1.0, y: 0.0, w: 1.0, h: 1.0, layer: 1 };
        assert_eq!(a.shared_edge(&b), 0.0);
    }

    #[test]
    fn stack3d_structure() {
        let f = Floorplan::stack3d(2, 1, 2, 1e-3, 1e-3).unwrap();
        assert_eq!(f.n_cores(), 4);
        assert_eq!(f.n_layers(), 2);
        // Vertical pairs: each of the two positions pairs layer0->layer1.
        let v = f.vertical_adjacency();
        assert_eq!(v.len(), 2);
        for &(lo, hi) in &v {
            assert_eq!(f.cores()[lo].layer, 0);
            assert_eq!(f.cores()[hi].layer, 1);
        }
        assert_eq!(f.sink_side_cores(), vec![0, 1]);
    }

    #[test]
    fn hotspot_flp_roundtrip() {
        let f = Floorplan::paper_grid(2, 2).unwrap();
        let text = f.to_hotspot_flp();
        let (back, names) = Floorplan::from_hotspot_flp(&text).unwrap();
        assert_eq!(back.n_cores(), 4);
        assert_eq!(names, vec!["core0", "core1", "core2", "core3"]);
        for (a, b) in f.cores().iter().zip(back.cores()) {
            assert!((a.x - b.x).abs() < 1e-15 && (a.w - b.w).abs() < 1e-15);
        }
        // Same adjacency structure.
        assert_eq!(f.lateral_adjacency().len(), back.lateral_adjacency().len());
    }

    #[test]
    fn hotspot_flp_parses_real_format() {
        // Excerpt in the style of `HotSpot`'s ev6.flp.
        let text = "\
# comment line
Icache\t0.003072\t0.002816\t0.0\t0.0
Dcache\t0.003072\t0.002816\t0.003072\t0.0   # trailing comment

FPAdd\t0.001536\t0.001408\t0.0\t0.002816
";
        let (f, names) = Floorplan::from_hotspot_flp(text).unwrap();
        assert_eq!(f.n_cores(), 3);
        assert_eq!(names[0], "Icache");
        assert!((f.cores()[1].x - 0.003072).abs() < 1e-12);
        // Icache|Dcache share a vertical edge; FPAdd sits on Icache's top.
        assert_eq!(f.lateral_adjacency().len(), 2);
    }

    #[test]
    fn hotspot_flp_rejects_malformed() {
        assert!(Floorplan::from_hotspot_flp("too few fields\n").is_err());
        assert!(Floorplan::from_hotspot_flp("name w h x y\n").is_err());
        assert!(Floorplan::from_hotspot_flp("a 0.001 -0.001 0 0\n").is_err());
        assert!(Floorplan::from_hotspot_flp("").is_err()); // empty plan
    }

    #[test]
    fn partial_overlap_shared_edge() {
        // b offset by half a tile: shared edge is half the edge length.
        let a = CoreGeom { x: 0.0, y: 0.0, w: 1.0, h: 1.0, layer: 0 };
        let b = CoreGeom { x: 1.0, y: 0.5, w: 1.0, h: 1.0, layer: 0 };
        assert!((a.shared_edge(&b) - 0.5).abs() < 1e-12);
        assert!((b.shared_edge(&a) - 0.5).abs() < 1e-12);
    }
}
