//! Block-level thermal discretization (`HotSpot`'s "grid mode").
//!
//! The paper lumps each core into one thermal node ("we simplify the
//! floor-plan to the core-level"). This module provides the refinement that
//! `HotSpot` calls grid mode: every core tile is subdivided into `bx × by`
//! blocks, each becoming its own die node, with the core's power spread
//! uniformly across its blocks. The scheduling algorithms still speak
//! per-core power; [`GridModel`] translates, and reports per-core
//! temperatures as the maximum over the core's blocks (the physically
//! binding quantity).
//!
//! Its purpose in this reproduction is *validation*: the
//! `ablation_granularity` experiment quantifies how much the core-level
//! lumping under-reports peak temperatures, i.e. the discretization error
//! baked into the paper's (and our) evaluation.

use crate::{CoreGeom, Floorplan, RcConfig, RcNetwork, Result, ThermalError, ThermalModel};
use mosc_linalg::Vector;

/// A thermal model whose die layer is discretized into sub-core blocks.
#[derive(Debug)]
pub struct GridModel {
    model: ThermalModel,
    /// Block node indices per original core.
    blocks_of_core: Vec<Vec<usize>>,
    n_cores: usize,
}

impl GridModel {
    /// Builds a grid model: each core of `floorplan` is split into
    /// `bx × by` equal blocks.
    ///
    /// # Errors
    /// Rejects zero subdivisions and propagates network/model failures.
    pub fn build(
        floorplan: &Floorplan,
        config: &RcConfig,
        beta: f64,
        bx: usize,
        by: usize,
    ) -> Result<Self> {
        if bx == 0 || by == 0 {
            return Err(ThermalError::InvalidParameter {
                what: "subdivision must be at least 1x1",
            });
        }
        let mut tiles = Vec::with_capacity(floorplan.n_cores() * bx * by);
        let mut blocks_of_core = Vec::with_capacity(floorplan.n_cores());
        for core in floorplan.cores() {
            let mut ids = Vec::with_capacity(bx * by);
            let (w, h) = (core.w / bx as f64, core.h / by as f64);
            for iy in 0..by {
                for ix in 0..bx {
                    ids.push(tiles.len());
                    tiles.push(CoreGeom {
                        x: core.x + ix as f64 * w,
                        y: core.y + iy as f64 * h,
                        w,
                        h,
                        layer: core.layer,
                    });
                }
            }
            blocks_of_core.push(ids);
        }
        let fine = Floorplan::new(tiles)?;
        let network = RcNetwork::build(&fine, config)?;
        // Leakage β is a per-core quantity; each block carries its share.
        let beta_block = beta / (bx * by) as f64;
        let model = ThermalModel::new(network, beta_block)?;
        Ok(Self { model, blocks_of_core, n_cores: floorplan.n_cores() })
    }

    /// Number of original cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Number of die blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.blocks_of_core.iter().map(Vec::len).sum()
    }

    /// The underlying (block-level) thermal model.
    #[must_use]
    pub fn inner(&self) -> &ThermalModel {
        &self.model
    }

    /// Spreads per-core power uniformly over each core's blocks.
    ///
    /// # Errors
    /// Returns [`ThermalError::DimensionMismatch`] for a wrong-length profile.
    pub fn spread_power(&self, psi_cores: &[f64]) -> Result<Vec<f64>> {
        if psi_cores.len() != self.n_cores {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_cores,
                actual: psi_cores.len(),
                op: "spread_power",
            });
        }
        let mut out = vec![0.0; self.n_blocks()];
        for (core, blocks) in self.blocks_of_core.iter().enumerate() {
            let share = psi_cores[core] / blocks.len() as f64;
            for &b in blocks {
                out[b] = share;
            }
        }
        Ok(out)
    }

    /// Steady-state per-core temperatures: the **maximum block temperature**
    /// within each core under the given per-core power.
    ///
    /// # Errors
    /// Dimension mismatches or solver failures.
    pub fn steady_state_cores(&self, psi_cores: &[f64]) -> Result<Vector> {
        let block_psi = self.spread_power(psi_cores)?;
        let t = self.model.steady_state(&block_psi)?;
        Ok(self.reduce_to_cores(&t))
    }

    /// Reduces a block-level node vector to per-core maxima.
    #[must_use]
    pub fn reduce_to_cores(&self, t: &Vector) -> Vector {
        Vector::from_fn(self.n_cores, |c| {
            self.blocks_of_core[c].iter().map(|&b| t[b]).fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Advances the block-level state across one interval of per-core power.
    ///
    /// # Errors
    /// Dimension mismatches or solver failures.
    pub fn advance(&self, t0: &Vector, psi_cores: &[f64], dt: f64) -> Result<Vector> {
        let block_psi = self.spread_power(psi_cores)?;
        self.model.advance(t0, &block_psi, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Floorplan {
        Floorplan::paper_grid(1, 3).expect("floorplan")
    }

    #[test]
    fn build_counts() {
        let g = GridModel::build(&base(), &RcConfig::default(), 0.03, 2, 2).unwrap();
        assert_eq!(g.n_cores(), 3);
        assert_eq!(g.n_blocks(), 12);
        // 12 die + 12 spreader + 12 sink + 2 rim nodes.
        assert_eq!(g.inner().n_nodes(), 38);
    }

    #[test]
    fn rejects_zero_subdivision() {
        assert!(GridModel::build(&base(), &RcConfig::default(), 0.03, 0, 2).is_err());
        assert!(GridModel::build(&base(), &RcConfig::default(), 0.03, 2, 0).is_err());
    }

    #[test]
    fn one_by_one_grid_matches_core_level_model() {
        let f = base();
        let g = GridModel::build(&f, &RcConfig::default(), 0.03, 1, 1).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let m = ThermalModel::new(n, 0.03).unwrap();
        let psi = [10.0, 15.0, 5.0];
        let tg = g.steady_state_cores(&psi).unwrap();
        let tm = m.steady_state_cores(&psi).unwrap();
        assert!(tg.max_abs_diff(&tm) < 1e-9, "1x1 grid must equal the lumped model");
    }

    #[test]
    fn spread_power_conserves_total() {
        let g = GridModel::build(&base(), &RcConfig::default(), 0.03, 3, 2).unwrap();
        let psi = [12.0, 0.0, 6.0];
        let spread = g.spread_power(&psi).unwrap();
        assert!((spread.iter().sum::<f64>() - 18.0).abs() < 1e-12);
        assert!(g.spread_power(&[1.0]).is_err());
    }

    #[test]
    fn refinement_converges_and_bounds_hold() {
        // Under uniform per-core power the refined model's per-core max
        // temperature should be close to the lumped one (uniform power has
        // no intra-core gradient except edge effects) and successive
        // refinements should converge.
        let f = base();
        let psi = [14.0, 14.0, 14.0];
        let lumped = {
            let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
            ThermalModel::new(n, 0.03).unwrap().steady_state_cores(&psi).unwrap().max()
        };
        let refined: Vec<f64> = [2usize, 3, 4]
            .iter()
            .map(|&b| {
                GridModel::build(&f, &RcConfig::default(), 0.03, b, b)
                    .unwrap()
                    .steady_state_cores(&psi)
                    .unwrap()
                    .max()
            })
            .collect();
        // Finer grids resolve the hotter core centers: monotone up, but the
        // whole family stays within ~1.5 K (the lumping error this ablation
        // quantifies), and the increments shrink (convergence).
        assert!(lumped <= refined[0] + 1e-9, "lumped {lumped} vs 2x2 {}", refined[0]);
        assert!(refined[0] <= refined[1] + 1e-9 && refined[1] <= refined[2] + 1e-9);
        assert!(refined[2] - lumped < 1.5, "lumping error too large: {lumped} vs {refined:?}");
        assert!(
            refined[2] - refined[1] < refined[1] - refined[0] + 0.05,
            "refinement increments should shrink: {lumped} {refined:?}"
        );
    }

    #[test]
    fn hot_neighbor_creates_intra_core_gradient() {
        // Power only on core 0: core 1's block nearest to core 0 runs hotter
        // than its far block — the gradient the lumped model cannot see.
        let g = GridModel::build(&base(), &RcConfig::default(), 0.03, 2, 1).unwrap();
        let psi = [18.0, 0.0, 0.0];
        let spread = g.spread_power(&psi).unwrap();
        let t = g.inner().steady_state(&spread).unwrap();
        // Core 1 blocks: indices 2 (near core 0) and 3 (far).
        assert!(t[2] > t[3], "block adjacent to the hot core must be warmer: {} vs {}", t[2], t[3]);
    }

    #[test]
    fn advance_dimensionality() {
        let g = GridModel::build(&base(), &RcConfig::default(), 0.03, 2, 2).unwrap();
        let t0 = Vector::zeros(g.inner().n_nodes());
        let t1 = g.advance(&t0, &[10.0, 10.0, 10.0], 0.1).unwrap();
        assert_eq!(t1.len(), g.inner().n_nodes());
        let cores = g.reduce_to_cores(&t1);
        assert_eq!(cores.len(), 3);
        assert!(cores.min() > 0.0);
    }
}
