//! `HotSpot`-style lumped RC thermal modeling for multi-core processors.
//!
//! The paper's entire analysis rests on the compact thermal model of eq. (2):
//!
//! ```text
//! dT(t)/dt = A·T(t) + B(v)
//! ```
//!
//! where `T` stacks the temperatures of every thermal node, `A` encodes the
//! thermal capacitances/conductances (plus the linearized leakage term `β·T`)
//! and `B(v)` the mode-dependent power injection. The authors obtained `A`
//! and `B` from `HotSpot`-5.02 at the 65 nm node with 4×4 mm cores; this crate
//! builds an equivalent lumped network from first principles:
//!
//! * [`Floorplan`] — 2-D grids (the paper's 2×1, 3×1, 3×2, 3×3 layouts),
//!   heterogeneous tile lists, and 3-D stacks (the introduction's motivating
//!   scenario).
//! * [`RcConfig`] / [`Materials`] — per-core vertical resistances
//!   (die→spreader→sink→ambient), lateral coupling conductances at each layer,
//!   and capacitances, either given directly or derived from material
//!   constants.
//! * [`RcNetwork`] — the assembled conductance matrix `G` (an SPD Laplacian
//!   with ambient legs) and capacitance vector `C` over nodes
//!   {die₀…, spreader₀…, sink₀…}.
//! * [`ThermalModel`] — the LTI system: steady states `T∞ = (G−βE)⁻¹·ψ`, the
//!   response matrix used by the fast exhaustive search, cached interval
//!   propagators `Φ = e^{A·l}` (diagonalized once, then O(n²)·matmul per new
//!   interval length), and a stability proof obligation (all eigenvalues of
//!   `A` negative) checked at construction.
//! * [`sim`] — a fixed-step RK4 reference integrator used to cross-validate
//!   the analytic propagator, and [`Trace`] recording for the figure
//!   reproductions.
//!
//! Temperatures are **relative to ambient** (ambient = 0). Use the power
//! crate's `PlatformParams::to_celsius` for display.
//!
//! ```
//! use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};
//!
//! // The paper's 2-core platform: a 1x2 grid of 4x4 mm cores.
//! let floorplan = Floorplan::paper_grid(1, 2)?;
//! let network = RcNetwork::build(&floorplan, &RcConfig::default())?;
//! let model = ThermalModel::new(network, 0.03)?;
//!
//! // Steady state under 10 W per core: every eigenvalue of A is negative,
//! // and both cores settle at the same temperature by symmetry.
//! assert!(model.eigenvalues().max() < 0.0);
//! let t = model.steady_state_cores(&[10.0, 10.0])?;
//! assert!((t[0] - t[1]).abs() < 1e-9);
//! assert!(t[0] > 0.0);
//! # Ok::<(), mosc_thermal::ThermalError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod config;
mod error;
mod floorplan;
mod grid;
mod model;
mod network;
pub mod sim;
mod trace;

pub use config::{Materials, RcConfig};
pub use error::ThermalError;
pub use floorplan::{CoreGeom, Floorplan};
pub use grid::GridModel;
pub use model::ThermalModel;
pub use network::RcNetwork;
pub use trace::{PeakSample, Trace};

/// Result alias for thermal operations.
pub type Result<T> = std::result::Result<T, ThermalError>;
