//! The LTI thermal model `dT/dt = A·T + B(ψ)` and its solvers.

use crate::{RcNetwork, Result, ThermalError};
use mosc_linalg::{Lu, Matrix, SymmetricEigen, Vector};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Modal steady-state lookups served from the memo
/// ([`ThermalModel::modal_steady_state`]) instead of a fresh LU solve.
static T_INF_CACHE_HITS: mosc_obs::Counter = mosc_obs::Counter::new("steady_state.cache_hits");

/// Propagator-cache capacity. Bisection-style callers generate unbounded
/// distinct `dt` values; past this size the least-recently-used half is
/// evicted so the handful of hot schedule-interval lengths survive.
const PROPAGATOR_CACHE_CAP: usize = 8192;

/// Modal steady-state memo capacity: profiles are combinations of the
/// discrete voltage levels, so in practice this is never reached.
const T_INF_CACHE_CAP: usize = 4096;

/// The linear time-invariant thermal model of eq. (2), assembled from an
/// [`RcNetwork`] and the leakage sensitivity `β`:
///
/// ```text
/// C·dT/dt = −G·T + β·E·T + ψ_ext   ⇒   A = C⁻¹(βE − G),  B(ψ) = C⁻¹ψ_ext
/// ```
///
/// where `E` selects die nodes (leakage flows in cores, not in the package)
/// and `ψ_ext` scatters the per-core temperature-independent power onto die
/// nodes. `A` is similar to the symmetric negative-definite matrix
/// `−C^{-1/2}(G−βE)C^{-1/2}`, so its eigenvalues are negative reals — exactly
/// the spectrum assumption the paper's Theorems 1–5 need. Construction fails
/// with [`ThermalError::Unstable`] if `β` is large enough to break it
/// (thermal runaway).
///
/// The eigendecomposition is computed once; every interval propagator
/// `Φ(l) = e^{A·l}` afterwards costs two dense multiplications, and repeated
/// lengths hit an internal cache (keyed by the bit pattern of `l`), which is
/// what keeps Algorithm 2's m-sweep and the Fig. 3 phase sweeps fast.
#[derive(Debug)]
pub struct ThermalModel {
    network: RcNetwork,
    /// Per-core leakage sensitivities (W/K), in core order.
    betas: Vec<f64>,
    /// LU of `G_eff = G − βE`, for steady states.
    lu_geff: Lu,
    /// Eigendecomposition of `S = C^{-1/2}·G_eff·C^{-1/2}` (SPD).
    eigen: SymmetricEigen,
    /// `C^{1/2}` and `C^{-1/2}` diagonals.
    c_sqrt: Vec<f64>,
    c_inv_sqrt: Vec<f64>,
    /// Response matrix: `T∞(cores) = R · ψ(cores)`, precomputed lazily.
    response: Mutex<Option<Arc<Matrix>>>,
    /// Propagator cache keyed by interval-length bit pattern; the `u64`
    /// value is a last-access stamp driven by `prop_tick` (recency-based
    /// eviction, see [`PROPAGATOR_CACHE_CAP`]).
    propagators: Mutex<HashMap<u64, (Arc<Matrix>, u64)>>,
    /// Monotone access counter backing the propagator cache's recency stamps.
    prop_tick: AtomicU64,
    /// Modal steady states memoized by the power profile's bit pattern.
    modal_t_inf: Mutex<HashMap<Vec<u64>, Arc<Vector>>>,
}

impl ThermalModel {
    /// Builds the model with one leakage sensitivity shared by all cores;
    /// checks stability.
    ///
    /// # Errors
    /// * [`ThermalError::InvalidParameter`] for negative/non-finite `β`.
    /// * [`ThermalError::Unstable`] when `A` has a non-negative eigenvalue.
    /// * Propagated linear-algebra failures for degenerate networks.
    pub fn new(network: RcNetwork, beta: f64) -> Result<Self> {
        let betas = vec![beta; network.n_cores()];
        Self::with_betas(network, &betas)
    }

    /// Builds the model with per-core leakage sensitivities (process
    /// variation / heterogeneous core types); checks stability.
    ///
    /// # Errors
    /// * [`ThermalError::InvalidParameter`] for negative/non-finite `β` or a
    ///   wrong-length slice.
    /// * [`ThermalError::Unstable`] when `A` has a non-negative eigenvalue.
    /// * Propagated linear-algebra failures for degenerate networks.
    pub fn with_betas(network: RcNetwork, betas: &[f64]) -> Result<Self> {
        if betas.len() != network.n_cores() {
            return Err(ThermalError::DimensionMismatch {
                expected: network.n_cores(),
                actual: betas.len(),
                op: "with_betas",
            });
        }
        if betas.iter().any(|b| !b.is_finite() || *b < 0.0) {
            return Err(ThermalError::InvalidParameter { what: "beta must be finite and >= 0" });
        }
        let n = network.n_nodes();
        let n_cores = network.n_cores();

        // G_eff = G − E·diag(β) (E selects die nodes).
        let mut g_eff = network.conductance().clone();
        for i in 0..n_cores {
            g_eff[(i, i)] -= betas[i];
        }

        let c_sqrt: Vec<f64> = network.capacitance().iter().map(|&c| c.sqrt()).collect();
        let c_inv_sqrt: Vec<f64> = c_sqrt.iter().map(|&s| 1.0 / s).collect();

        // S = C^{-1/2} G_eff C^{-1/2}: symmetric; SPD ⟺ model stable.
        let s = Matrix::from_fn(n, n, |i, j| c_inv_sqrt[i] * g_eff[(i, j)] * c_inv_sqrt[j]);
        let eigen = SymmetricEigen::new(&s)?;
        let min_eig = eigen.values.min();
        if min_eig <= 0.0 {
            // Eigenvalues of A are the negated eigenvalues of S.
            return Err(ThermalError::Unstable { max_eigenvalue: -min_eig });
        }

        let lu_geff = Lu::new(&g_eff)?;
        Ok(Self {
            network,
            betas: betas.to_vec(),
            lu_geff,
            eigen,
            c_sqrt,
            c_inv_sqrt,
            response: Mutex::new(None),
            propagators: Mutex::new(HashMap::new()),
            prop_tick: AtomicU64::new(0),
            modal_t_inf: Mutex::new(HashMap::new()),
        })
    }

    /// Number of cores (die nodes, indices `0..n_cores`).
    #[inline]
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.network.n_cores()
    }

    /// Total thermal node count.
    #[inline]
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.network.n_nodes()
    }

    /// The underlying network.
    #[inline]
    #[must_use]
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// Nominal leakage sensitivity β (W/K) — the first core's value; use
    /// [`ThermalModel::betas`] for the per-core list.
    #[inline]
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.betas[0]
    }

    /// Per-core leakage sensitivities (W/K).
    #[inline]
    #[must_use]
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Eigenvalues of the state matrix `A` (all negative), ascending.
    #[must_use]
    pub fn eigenvalues(&self) -> Vector {
        // A's spectrum is the negation of S's; S ascending ⇒ negate+reverse.
        let n = self.eigen.values.len();
        Vector::from_fn(n, |k| -self.eigen.values[n - 1 - k])
    }

    /// Materializes the state matrix `A = C⁻¹(βE − G)` (mostly for tests and
    /// the RK4 cross-check; the solvers use the factored forms).
    #[must_use]
    pub fn a_matrix(&self) -> Matrix {
        let n = self.n_nodes();
        let g = self.network.conductance();
        let c = self.network.capacitance();
        Matrix::from_fn(n, n, |i, j| {
            let mut v = -g[(i, j)];
            if i == j && i < self.n_cores() {
                v += self.betas[i];
            }
            v / c[i]
        })
    }

    /// Scatters per-core power onto the full node vector (`ψ_ext`).
    ///
    /// # Errors
    /// Returns [`ThermalError::DimensionMismatch`] for a wrong-length profile.
    pub fn scatter_power(&self, psi_cores: &[f64]) -> Result<Vector> {
        if psi_cores.len() != self.n_cores() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_cores(),
                actual: psi_cores.len(),
                op: "scatter_power",
            });
        }
        let mut p = Vector::zeros(self.n_nodes());
        for (i, &v) in psi_cores.iter().enumerate() {
            p[i] = v;
        }
        Ok(p)
    }

    /// Steady-state node temperatures under constant per-core power:
    /// `T∞ = G_eff⁻¹·ψ_ext` (eq. `T∞ = −A⁻¹B`).
    ///
    /// # Errors
    /// Dimension mismatch or (never for a constructed model) solver failure.
    pub fn steady_state(&self, psi_cores: &[f64]) -> Result<Vector> {
        let p = self.scatter_power(psi_cores)?;
        Ok(self.lu_geff.solve_vec(&p)?)
    }

    /// Steady-state **core** temperatures only.
    ///
    /// # Errors
    /// Same as [`ThermalModel::steady_state`].
    pub fn steady_state_cores(&self, psi_cores: &[f64]) -> Result<Vector> {
        let full = self.steady_state(psi_cores)?;
        Ok(Vector::from_fn(self.n_cores(), |i| full[i]))
    }

    /// The `n_cores × n_cores` response matrix `R` with
    /// `T∞(cores) = R·ψ(cores)`. Column `j` is the core-temperature response
    /// to 1 W on core `j`; all entries are positive (heating any core warms
    /// every core). Precomputed on first use, then shared.
    ///
    /// # Errors
    /// Solver failure (cannot occur for a constructed model).
    pub fn response_matrix(&self) -> Result<Arc<Matrix>> {
        let mut guard = self.response.lock().expect("response lock poisoned");
        if let Some(r) = guard.as_ref() {
            return Ok(Arc::clone(r));
        }
        let nc = self.n_cores();
        let mut r = Matrix::zeros(nc, nc);
        for j in 0..nc {
            let mut unit = vec![0.0; nc];
            unit[j] = 1.0;
            let t = self.steady_state_cores(&unit)?;
            for i in 0..nc {
                r[(i, j)] = t[i];
            }
        }
        let arc = Arc::new(r);
        *guard = Some(Arc::clone(&arc));
        Ok(arc)
    }

    /// The interval propagator `Φ(dt) = e^{A·dt}`, computed through the
    /// cached eigendecomposition (`e^{A·t} = C^{-1/2}·V·e^{−Λt}·Vᵀ·C^{1/2}`)
    /// and memoized per distinct `dt`.
    ///
    /// # Errors
    /// Returns [`ThermalError::InvalidParameter`] for negative or non-finite
    /// `dt`.
    pub fn propagator(&self, dt: f64) -> Result<Arc<Matrix>> {
        if !dt.is_finite() || dt < 0.0 {
            return Err(ThermalError::InvalidParameter { what: "dt must be finite and >= 0" });
        }
        let key = dt.to_bits();
        {
            let mut cache = self.propagators.lock().expect("propagator lock poisoned");
            if let Some((phi, stamp)) = cache.get_mut(&key) {
                *stamp = self.prop_tick.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(phi));
            }
            // Bound the cache without wiping it: dropping everything would
            // also evict the hot schedule-interval lengths mid-solve
            // whenever a bisection caller floods it with one-shot values.
            // Evicting the least-recently-used half keeps recent keys live.
            if cache.len() >= PROPAGATOR_CACHE_CAP {
                let mut stamps: Vec<u64> = cache.values().map(|(_, s)| *s).collect();
                stamps.sort_unstable();
                let cutoff = stamps[stamps.len() / 2];
                cache.retain(|_, (_, s)| *s > cutoff);
            }
        }
        let n = self.n_nodes();
        mosc_linalg::count_expm_call();
        let v = &self.eigen.vectors;
        // M = V · diag(e^{-λ·dt}) · Vᵀ, then Φ = C^{-1/2} M C^{1/2}.
        let mut scaled = Matrix::zeros(n, n);
        for k in 0..n {
            let e = (-self.eigen.values[k] * dt).exp();
            for i in 0..n {
                scaled[(i, k)] = v[(i, k)] * e;
            }
        }
        let m = scaled.matmul(&v.transpose())?;
        let phi = Matrix::from_fn(n, n, |i, j| self.c_inv_sqrt[i] * m[(i, j)] * self.c_sqrt[j]);
        let arc = Arc::new(phi);
        let stamp = self.prop_tick.fetch_add(1, Ordering::Relaxed);
        self.propagators
            .lock()
            .expect("propagator lock poisoned")
            .insert(key, (Arc::clone(&arc), stamp));
        Ok(arc)
    }

    /// `true` when the propagator for exactly this `dt` is currently cached
    /// (diagnostics; used by the cache-eviction regression tests).
    #[must_use]
    pub fn propagator_cached(&self, dt: f64) -> bool {
        self.propagators.lock().expect("propagator lock poisoned").contains_key(&dt.to_bits())
    }

    /// Modal decay factors over an interval of length `dt`: the diagonal of
    /// `e^{−Λ·dt}` in the eigenbasis of `S = C^{-1/2}·G_eff·C^{-1/2}`.
    ///
    /// Because every propagator `Φ(l) = e^{A·l}` shares this eigenbasis, an
    /// interval update that costs a dense `matvec` in node coordinates is
    /// *elementwise* in modal coordinates: with `y = Vᵀ·C^{1/2}·T`,
    ///
    /// ```text
    /// y(t₀+dt) = d(dt) ∘ (y(t₀) − y∞) + y∞,   d(dt) = e^{−λ·dt}
    /// ```
    ///
    /// This is the `O(n)` primitive behind `mosc-sched`'s period-map kernel:
    /// no `expm`, no dense products, no `(I − K)` solve.
    ///
    /// # Errors
    /// Returns [`ThermalError::InvalidParameter`] for negative or non-finite
    /// `dt`.
    pub fn modal_decay(&self, dt: f64) -> Result<Vector> {
        if !dt.is_finite() || dt < 0.0 {
            return Err(ThermalError::InvalidParameter { what: "dt must be finite and >= 0" });
        }
        Ok(Vector::from_fn(self.n_nodes(), |k| (-self.eigen.values[k] * dt).exp()))
    }

    /// Maps a node-temperature vector into modal coordinates:
    /// `y = Vᵀ·(C^{1/2} ∘ x)`.
    ///
    /// # Errors
    /// Dimension mismatch.
    pub fn to_modal(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.n_nodes() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_nodes(),
                actual: x.len(),
                op: "to_modal",
            });
        }
        let scaled = Vector::from_fn(x.len(), |i| self.c_sqrt[i] * x[i]);
        Ok(self.eigen.vectors.tr_matvec(&scaled)?)
    }

    /// Maps a modal vector back to node temperatures:
    /// `x = C^{-1/2} ∘ (V·y)`.
    ///
    /// # Errors
    /// Dimension mismatch.
    pub fn from_modal(&self, y: &Vector) -> Result<Vector> {
        if y.len() != self.n_nodes() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_nodes(),
                actual: y.len(),
                op: "from_modal",
            });
        }
        let vy = self.eigen.vectors.matvec(y)?;
        Ok(Vector::from_fn(vy.len(), |i| self.c_inv_sqrt[i] * vy[i]))
    }

    /// The modal steady state `y∞ = Vᵀ·C^{1/2}·T∞(ψ)` for a per-core power
    /// profile, memoized by the profile's bit pattern. Schedule evaluations
    /// revisit the same handful of voltage vectors thousands of times per
    /// solver run (the AO m-sweep in particular re-evaluates identical
    /// interval powers at every `m`), so this turns the per-interval LU
    /// solve + basis change into a `HashMap` lookup; hits are counted on the
    /// `steady_state.cache_hits` counter.
    ///
    /// # Errors
    /// Dimension mismatch for a wrong-length profile.
    pub fn modal_steady_state(&self, psi_cores: &[f64]) -> Result<Arc<Vector>> {
        if psi_cores.len() != self.n_cores() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_cores(),
                actual: psi_cores.len(),
                op: "modal_steady_state",
            });
        }
        let key: Vec<u64> = psi_cores.iter().map(|p| p.to_bits()).collect();
        {
            let mut cache = self.modal_t_inf.lock().expect("modal T∞ lock poisoned");
            if let Some(y) = cache.get(&key) {
                T_INF_CACHE_HITS.incr();
                return Ok(Arc::clone(y));
            }
            if cache.len() >= T_INF_CACHE_CAP {
                cache.clear();
            }
        }
        let t_inf = self.steady_state(psi_cores)?;
        let arc = Arc::new(self.to_modal(&t_inf)?);
        self.modal_t_inf.lock().expect("modal T∞ lock poisoned").insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Advances the temperature across one state interval (eq. 3):
    /// `T(t₀+dt) = Φ(dt)·(T(t₀) − T∞) + T∞` with `T∞` the steady state of
    /// this interval's power profile.
    ///
    /// # Errors
    /// Dimension mismatches or invalid `dt`.
    pub fn advance(&self, t0: &Vector, psi_cores: &[f64], dt: f64) -> Result<Vector> {
        if t0.len() != self.n_nodes() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_nodes(),
                actual: t0.len(),
                op: "advance",
            });
        }
        let t_inf = self.steady_state(psi_cores)?;
        let phi = self.propagator(dt)?;
        let diff = t0 - &t_inf;
        let propagated = phi.matvec(&diff)?;
        Ok(&propagated + &t_inf)
    }

    /// Largest core temperature in a full node vector.
    ///
    /// # Panics
    /// Panics when `t` is shorter than the core count.
    #[must_use]
    pub fn max_core_temp(&self, t: &Vector) -> f64 {
        (0..self.n_cores()).fold(f64::NEG_INFINITY, |m, i| m.max(t[i]))
    }

    /// Number of distinct propagators currently cached (diagnostics).
    #[must_use]
    pub fn cached_propagators(&self) -> usize {
        self.propagators.lock().expect("propagator lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floorplan, RcConfig};
    use mosc_linalg::expm_scaled;

    fn model(rows: usize, cols: usize, beta: f64) -> ThermalModel {
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        ThermalModel::new(n, beta).unwrap()
    }

    #[test]
    fn eigenvalues_all_negative() {
        let m = model(2, 3, 0.03);
        let eigs = m.eigenvalues();
        assert!(eigs.max() < 0.0, "max eigenvalue {}", eigs.max());
        // Ascending order.
        for w in eigs.as_slice().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn huge_beta_is_rejected_as_unstable() {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let err = ThermalModel::new(n, 1e9).unwrap_err();
        assert!(matches!(err, ThermalError::Unstable { .. }));
    }

    #[test]
    fn invalid_beta_rejected() {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        assert!(ThermalModel::new(n.clone(), -0.1).is_err());
        assert!(ThermalModel::new(n, f64::NAN).is_err());
    }

    #[test]
    fn steady_state_matches_direct_solve() {
        let m = model(1, 3, 0.03);
        let psi = [5.0, 10.0, 3.0];
        let t = m.steady_state(&psi).unwrap();
        // Residual of G_eff·T = ψ_ext.
        let a = m.a_matrix();
        let p = m.scatter_power(&psi).unwrap();
        let c = m.network().capacitance();
        // A·T + C⁻¹ψ = 0 at steady state.
        let at = a.matvec(&t).unwrap();
        for i in 0..m.n_nodes() {
            assert!((at[i] + p[i] / c[i]).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn response_matrix_is_positive_and_linear() {
        let m = model(1, 3, 0.03);
        let r = m.response_matrix().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(r[(i, j)] > 0.0, "response ({i},{j})");
            }
            // Self-heating dominates.
            assert!(r[(i, i)] >= r[(i, (i + 1) % 3)]);
        }
        // Linearity: T∞(ψ) = R·ψ.
        let psi = [4.0, 7.0, 2.0];
        let via_r = r.matvec(&Vector::from_slice(&psi)).unwrap();
        let direct = m.steady_state_cores(&psi).unwrap();
        assert!(via_r.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn propagator_matches_pade_expm() {
        let m = model(1, 2, 0.03);
        for dt in [1e-3, 0.05, 1.0, 20.0] {
            let via_eigen = m.propagator(dt).unwrap();
            let via_pade = expm_scaled(&m.a_matrix(), dt).unwrap();
            let scale = via_pade.max_abs().max(1.0);
            assert!(
                via_eigen.max_abs_diff(&via_pade) / scale < 1e-8,
                "dt={dt}, diff={}",
                via_eigen.max_abs_diff(&via_pade)
            );
        }
    }

    #[test]
    fn propagator_cache_hits() {
        let m = model(1, 2, 0.03);
        let _ = m.propagator(0.5).unwrap();
        let _ = m.propagator(0.5).unwrap();
        let _ = m.propagator(0.25).unwrap();
        assert_eq!(m.cached_propagators(), 2);
    }

    #[test]
    fn propagator_cache_keeps_hot_keys_on_overflow() {
        // Regression: the cache used to clear *everything* when full, so a
        // bisection caller flooding it with one-shot dt values evicted the
        // hot schedule-interval propagators mid-solve. Recency eviction must
        // keep recently-touched keys alive across an overflow.
        let m = model(1, 2, 0.03);
        let hot = [0.125, 0.25, 0.5];
        for &dt in &hot {
            let _ = m.propagator(dt).unwrap();
        }
        // Flood the cache to capacity with cold one-shot entries (seeded
        // directly so the test does not pay for thousands of expm builds —
        // the eviction logic only looks at keys and stamps).
        let dummy = m.propagator(1.0).unwrap();
        {
            let mut cache = m.propagators.lock().unwrap();
            let mut i = 0u64;
            while cache.len() < PROPAGATOR_CACHE_CAP {
                i += 1;
                let stamp = m.prop_tick.fetch_add(1, Ordering::Relaxed);
                cache.insert((1e-7 * i as f64).to_bits(), (Arc::clone(&dummy), stamp));
            }
        }
        // The schedule evaluator keeps touching its interval lengths…
        for &dt in &hot {
            let _ = m.propagator(dt).unwrap();
        }
        // …then the next insert overflows the cache and must evict only the
        // least-recently-used half.
        let _ = m.propagator(2.0).unwrap();
        assert!(m.cached_propagators() <= PROPAGATOR_CACHE_CAP / 2 + 1, "eviction must shrink");
        for &dt in &hot {
            assert!(m.propagator_cached(dt), "hot propagator dt={dt} was evicted");
        }
        assert!(m.propagator_cached(2.0), "fresh insert must be cached");
    }

    #[test]
    fn modal_roundtrip_and_decay_match_propagator() {
        let m = model(2, 3, 0.03);
        let x = Vector::from_fn(m.n_nodes(), |i| 0.7 * i as f64 - 1.3);
        let y = m.to_modal(&x).unwrap();
        let back = m.from_modal(&y).unwrap();
        assert!(back.max_abs_diff(&x) < 1e-10, "roundtrip diff {}", back.max_abs_diff(&x));

        // Elementwise modal propagation equals the dense propagator.
        for dt in [1e-3, 0.04, 1.7] {
            let phi = m.propagator(dt).unwrap();
            let dense = phi.matvec(&x).unwrap();
            let d = m.modal_decay(dt).unwrap();
            let modal = Vector::from_fn(y.len(), |k| d[k] * y[k]);
            let via_modal = m.from_modal(&modal).unwrap();
            assert!(
                via_modal.max_abs_diff(&dense) < 1e-9,
                "dt={dt} diff {}",
                via_modal.max_abs_diff(&dense)
            );
        }
        assert!(m.modal_decay(-1.0).is_err());
        assert!(m.to_modal(&Vector::zeros(1)).is_err());
        assert!(m.from_modal(&Vector::zeros(1)).is_err());
    }

    #[test]
    fn modal_steady_state_is_memoized() {
        let m = model(1, 3, 0.03);
        let psi = [5.0, 2.0, 8.0];
        let a = m.modal_steady_state(&psi).unwrap();
        let b = m.modal_steady_state(&psi).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
        // And it is the modal image of the dense steady state.
        let direct = m.to_modal(&m.steady_state(&psi).unwrap()).unwrap();
        assert!(a.max_abs_diff(&direct) < 1e-12);
        assert!(m.modal_steady_state(&[1.0]).is_err());
    }

    #[test]
    fn advance_converges_to_steady_state() {
        let m = model(1, 3, 0.03);
        let psi = [10.0, 10.0, 10.0];
        let t_inf = m.steady_state(&psi).unwrap();
        let from_zero = m.advance(&Vector::zeros(m.n_nodes()), &psi, 5000.0).unwrap();
        assert!(from_zero.max_abs_diff(&t_inf) < 1e-6);
    }

    #[test]
    fn advance_zero_dt_is_identity() {
        let m = model(1, 2, 0.03);
        let t0 = Vector::from_fn(m.n_nodes(), |i| 0.3 * i as f64 + 0.5);
        let t1 = m.advance(&t0, &[5.0, 5.0], 0.0).unwrap();
        assert!(t1.max_abs_diff(&t0) < 1e-12);
    }

    #[test]
    fn advance_rejects_bad_shapes() {
        let m = model(1, 2, 0.03);
        assert!(m.advance(&Vector::zeros(2), &[1.0, 1.0], 0.1).is_err());
        assert!(m.steady_state(&[1.0]).is_err());
        assert!(m.propagator(-1.0).is_err());
        assert!(m.propagator(f64::NAN).is_err());
    }

    #[test]
    fn monotone_cooldown_property() {
        // Property 1 of the paper: powering everything down from a hot state
        // makes every node decay monotonically (sampled check).
        let m = model(1, 3, 0.03);
        let hot = m.steady_state(&[15.0, 18.0, 12.0]).unwrap();
        let off = [0.0, 0.0, 0.0];
        let mut prev = hot;
        for _ in 0..20 {
            let next = m.advance(&prev, &off, 0.5).unwrap();
            assert!(next.le_elementwise(&prev, 1e-9));
            prev = next;
        }
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let m = model(3, 3, 0.03);
        let low = m.steady_state_cores(&[5.0; 9]).unwrap();
        let high = m.steady_state_cores(&[6.0; 9]).unwrap();
        assert!(low.le_elementwise(&high, 0.0));
    }

    #[test]
    fn center_core_is_hottest_on_uniform_grid() {
        let m = model(3, 3, 0.03);
        let t = m.steady_state_cores(&[10.0; 9]).unwrap();
        assert_eq!(t.argmax(), Some(4), "center of the 3x3 grid must be hottest: {t}");
    }
}
