//! The LTI thermal model `dT/dt = A·T + B(ψ)` and its solvers.

use crate::{RcNetwork, Result, ThermalError};
use mosc_linalg::{Lu, Matrix, SymmetricEigen, Vector};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The linear time-invariant thermal model of eq. (2), assembled from an
/// [`RcNetwork`] and the leakage sensitivity `β`:
///
/// ```text
/// C·dT/dt = −G·T + β·E·T + ψ_ext   ⇒   A = C⁻¹(βE − G),  B(ψ) = C⁻¹ψ_ext
/// ```
///
/// where `E` selects die nodes (leakage flows in cores, not in the package)
/// and `ψ_ext` scatters the per-core temperature-independent power onto die
/// nodes. `A` is similar to the symmetric negative-definite matrix
/// `−C^{-1/2}(G−βE)C^{-1/2}`, so its eigenvalues are negative reals — exactly
/// the spectrum assumption the paper's Theorems 1–5 need. Construction fails
/// with [`ThermalError::Unstable`] if `β` is large enough to break it
/// (thermal runaway).
///
/// The eigendecomposition is computed once; every interval propagator
/// `Φ(l) = e^{A·l}` afterwards costs two dense multiplications, and repeated
/// lengths hit an internal cache (keyed by the bit pattern of `l`), which is
/// what keeps Algorithm 2's m-sweep and the Fig. 3 phase sweeps fast.
#[derive(Debug)]
pub struct ThermalModel {
    network: RcNetwork,
    /// Per-core leakage sensitivities (W/K), in core order.
    betas: Vec<f64>,
    /// LU of `G_eff = G − βE`, for steady states.
    lu_geff: Lu,
    /// Eigendecomposition of `S = C^{-1/2}·G_eff·C^{-1/2}` (SPD).
    eigen: SymmetricEigen,
    /// `C^{1/2}` and `C^{-1/2}` diagonals.
    c_sqrt: Vec<f64>,
    c_inv_sqrt: Vec<f64>,
    /// Response matrix: `T∞(cores) = R · ψ(cores)`, precomputed lazily.
    response: Mutex<Option<Arc<Matrix>>>,
    /// Propagator cache keyed by interval-length bit pattern.
    propagators: Mutex<HashMap<u64, Arc<Matrix>>>,
}

impl ThermalModel {
    /// Builds the model with one leakage sensitivity shared by all cores;
    /// checks stability.
    ///
    /// # Errors
    /// * [`ThermalError::InvalidParameter`] for negative/non-finite `β`.
    /// * [`ThermalError::Unstable`] when `A` has a non-negative eigenvalue.
    /// * Propagated linear-algebra failures for degenerate networks.
    pub fn new(network: RcNetwork, beta: f64) -> Result<Self> {
        let betas = vec![beta; network.n_cores()];
        Self::with_betas(network, &betas)
    }

    /// Builds the model with per-core leakage sensitivities (process
    /// variation / heterogeneous core types); checks stability.
    ///
    /// # Errors
    /// * [`ThermalError::InvalidParameter`] for negative/non-finite `β` or a
    ///   wrong-length slice.
    /// * [`ThermalError::Unstable`] when `A` has a non-negative eigenvalue.
    /// * Propagated linear-algebra failures for degenerate networks.
    pub fn with_betas(network: RcNetwork, betas: &[f64]) -> Result<Self> {
        if betas.len() != network.n_cores() {
            return Err(ThermalError::DimensionMismatch {
                expected: network.n_cores(),
                actual: betas.len(),
                op: "with_betas",
            });
        }
        if betas.iter().any(|b| !b.is_finite() || *b < 0.0) {
            return Err(ThermalError::InvalidParameter { what: "beta must be finite and >= 0" });
        }
        let n = network.n_nodes();
        let n_cores = network.n_cores();

        // G_eff = G − E·diag(β) (E selects die nodes).
        let mut g_eff = network.conductance().clone();
        for i in 0..n_cores {
            g_eff[(i, i)] -= betas[i];
        }

        let c_sqrt: Vec<f64> = network.capacitance().iter().map(|&c| c.sqrt()).collect();
        let c_inv_sqrt: Vec<f64> = c_sqrt.iter().map(|&s| 1.0 / s).collect();

        // S = C^{-1/2} G_eff C^{-1/2}: symmetric; SPD ⟺ model stable.
        let s = Matrix::from_fn(n, n, |i, j| c_inv_sqrt[i] * g_eff[(i, j)] * c_inv_sqrt[j]);
        let eigen = SymmetricEigen::new(&s)?;
        let min_eig = eigen.values.min();
        if min_eig <= 0.0 {
            // Eigenvalues of A are the negated eigenvalues of S.
            return Err(ThermalError::Unstable { max_eigenvalue: -min_eig });
        }

        let lu_geff = Lu::new(&g_eff)?;
        Ok(Self {
            network,
            betas: betas.to_vec(),
            lu_geff,
            eigen,
            c_sqrt,
            c_inv_sqrt,
            response: Mutex::new(None),
            propagators: Mutex::new(HashMap::new()),
        })
    }

    /// Number of cores (die nodes, indices `0..n_cores`).
    #[inline]
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.network.n_cores()
    }

    /// Total thermal node count.
    #[inline]
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.network.n_nodes()
    }

    /// The underlying network.
    #[inline]
    #[must_use]
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// Nominal leakage sensitivity β (W/K) — the first core's value; use
    /// [`ThermalModel::betas`] for the per-core list.
    #[inline]
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.betas[0]
    }

    /// Per-core leakage sensitivities (W/K).
    #[inline]
    #[must_use]
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Eigenvalues of the state matrix `A` (all negative), ascending.
    #[must_use]
    pub fn eigenvalues(&self) -> Vector {
        // A's spectrum is the negation of S's; S ascending ⇒ negate+reverse.
        let n = self.eigen.values.len();
        Vector::from_fn(n, |k| -self.eigen.values[n - 1 - k])
    }

    /// Materializes the state matrix `A = C⁻¹(βE − G)` (mostly for tests and
    /// the RK4 cross-check; the solvers use the factored forms).
    #[must_use]
    pub fn a_matrix(&self) -> Matrix {
        let n = self.n_nodes();
        let g = self.network.conductance();
        let c = self.network.capacitance();
        Matrix::from_fn(n, n, |i, j| {
            let mut v = -g[(i, j)];
            if i == j && i < self.n_cores() {
                v += self.betas[i];
            }
            v / c[i]
        })
    }

    /// Scatters per-core power onto the full node vector (`ψ_ext`).
    ///
    /// # Errors
    /// Returns [`ThermalError::DimensionMismatch`] for a wrong-length profile.
    pub fn scatter_power(&self, psi_cores: &[f64]) -> Result<Vector> {
        if psi_cores.len() != self.n_cores() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_cores(),
                actual: psi_cores.len(),
                op: "scatter_power",
            });
        }
        let mut p = Vector::zeros(self.n_nodes());
        for (i, &v) in psi_cores.iter().enumerate() {
            p[i] = v;
        }
        Ok(p)
    }

    /// Steady-state node temperatures under constant per-core power:
    /// `T∞ = G_eff⁻¹·ψ_ext` (eq. `T∞ = −A⁻¹B`).
    ///
    /// # Errors
    /// Dimension mismatch or (never for a constructed model) solver failure.
    pub fn steady_state(&self, psi_cores: &[f64]) -> Result<Vector> {
        let p = self.scatter_power(psi_cores)?;
        Ok(self.lu_geff.solve_vec(&p)?)
    }

    /// Steady-state **core** temperatures only.
    ///
    /// # Errors
    /// Same as [`ThermalModel::steady_state`].
    pub fn steady_state_cores(&self, psi_cores: &[f64]) -> Result<Vector> {
        let full = self.steady_state(psi_cores)?;
        Ok(Vector::from_fn(self.n_cores(), |i| full[i]))
    }

    /// The `n_cores × n_cores` response matrix `R` with
    /// `T∞(cores) = R·ψ(cores)`. Column `j` is the core-temperature response
    /// to 1 W on core `j`; all entries are positive (heating any core warms
    /// every core). Precomputed on first use, then shared.
    ///
    /// # Errors
    /// Solver failure (cannot occur for a constructed model).
    pub fn response_matrix(&self) -> Result<Arc<Matrix>> {
        let mut guard = self.response.lock().expect("response lock poisoned");
        if let Some(r) = guard.as_ref() {
            return Ok(Arc::clone(r));
        }
        let nc = self.n_cores();
        let mut r = Matrix::zeros(nc, nc);
        for j in 0..nc {
            let mut unit = vec![0.0; nc];
            unit[j] = 1.0;
            let t = self.steady_state_cores(&unit)?;
            for i in 0..nc {
                r[(i, j)] = t[i];
            }
        }
        let arc = Arc::new(r);
        *guard = Some(Arc::clone(&arc));
        Ok(arc)
    }

    /// The interval propagator `Φ(dt) = e^{A·dt}`, computed through the
    /// cached eigendecomposition (`e^{A·t} = C^{-1/2}·V·e^{−Λt}·Vᵀ·C^{1/2}`)
    /// and memoized per distinct `dt`.
    ///
    /// # Errors
    /// Returns [`ThermalError::InvalidParameter`] for negative or non-finite
    /// `dt`.
    pub fn propagator(&self, dt: f64) -> Result<Arc<Matrix>> {
        if !dt.is_finite() || dt < 0.0 {
            return Err(ThermalError::InvalidParameter { what: "dt must be finite and >= 0" });
        }
        let key = dt.to_bits();
        {
            let mut cache = self.propagators.lock().expect("propagator lock poisoned");
            if let Some(phi) = cache.get(&key) {
                return Ok(Arc::clone(phi));
            }
            // Bound the cache: bisection-style callers generate unbounded
            // distinct dt values; past this size the hit rate no longer
            // justifies the memory.
            if cache.len() >= 8192 {
                cache.clear();
            }
        }
        let n = self.n_nodes();
        mosc_linalg::count_expm_call();
        let v = &self.eigen.vectors;
        // M = V · diag(e^{-λ·dt}) · Vᵀ, then Φ = C^{-1/2} M C^{1/2}.
        let mut scaled = Matrix::zeros(n, n);
        for k in 0..n {
            let e = (-self.eigen.values[k] * dt).exp();
            for i in 0..n {
                scaled[(i, k)] = v[(i, k)] * e;
            }
        }
        let m = scaled.matmul(&v.transpose())?;
        let phi = Matrix::from_fn(n, n, |i, j| self.c_inv_sqrt[i] * m[(i, j)] * self.c_sqrt[j]);
        let arc = Arc::new(phi);
        self.propagators.lock().expect("propagator lock poisoned").insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Advances the temperature across one state interval (eq. 3):
    /// `T(t₀+dt) = Φ(dt)·(T(t₀) − T∞) + T∞` with `T∞` the steady state of
    /// this interval's power profile.
    ///
    /// # Errors
    /// Dimension mismatches or invalid `dt`.
    pub fn advance(&self, t0: &Vector, psi_cores: &[f64], dt: f64) -> Result<Vector> {
        if t0.len() != self.n_nodes() {
            return Err(ThermalError::DimensionMismatch {
                expected: self.n_nodes(),
                actual: t0.len(),
                op: "advance",
            });
        }
        let t_inf = self.steady_state(psi_cores)?;
        let phi = self.propagator(dt)?;
        let diff = t0 - &t_inf;
        let propagated = phi.matvec(&diff)?;
        Ok(&propagated + &t_inf)
    }

    /// Largest core temperature in a full node vector.
    ///
    /// # Panics
    /// Panics when `t` is shorter than the core count.
    #[must_use]
    pub fn max_core_temp(&self, t: &Vector) -> f64 {
        (0..self.n_cores()).fold(f64::NEG_INFINITY, |m, i| m.max(t[i]))
    }

    /// Number of distinct propagators currently cached (diagnostics).
    #[must_use]
    pub fn cached_propagators(&self) -> usize {
        self.propagators.lock().expect("propagator lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floorplan, RcConfig};
    use mosc_linalg::expm_scaled;

    fn model(rows: usize, cols: usize, beta: f64) -> ThermalModel {
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        ThermalModel::new(n, beta).unwrap()
    }

    #[test]
    fn eigenvalues_all_negative() {
        let m = model(2, 3, 0.03);
        let eigs = m.eigenvalues();
        assert!(eigs.max() < 0.0, "max eigenvalue {}", eigs.max());
        // Ascending order.
        for w in eigs.as_slice().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn huge_beta_is_rejected_as_unstable() {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let err = ThermalModel::new(n, 1e9).unwrap_err();
        assert!(matches!(err, ThermalError::Unstable { .. }));
    }

    #[test]
    fn invalid_beta_rejected() {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        assert!(ThermalModel::new(n.clone(), -0.1).is_err());
        assert!(ThermalModel::new(n, f64::NAN).is_err());
    }

    #[test]
    fn steady_state_matches_direct_solve() {
        let m = model(1, 3, 0.03);
        let psi = [5.0, 10.0, 3.0];
        let t = m.steady_state(&psi).unwrap();
        // Residual of G_eff·T = ψ_ext.
        let a = m.a_matrix();
        let p = m.scatter_power(&psi).unwrap();
        let c = m.network().capacitance();
        // A·T + C⁻¹ψ = 0 at steady state.
        let at = a.matvec(&t).unwrap();
        for i in 0..m.n_nodes() {
            assert!((at[i] + p[i] / c[i]).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn response_matrix_is_positive_and_linear() {
        let m = model(1, 3, 0.03);
        let r = m.response_matrix().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(r[(i, j)] > 0.0, "response ({i},{j})");
            }
            // Self-heating dominates.
            assert!(r[(i, i)] >= r[(i, (i + 1) % 3)]);
        }
        // Linearity: T∞(ψ) = R·ψ.
        let psi = [4.0, 7.0, 2.0];
        let via_r = r.matvec(&Vector::from_slice(&psi)).unwrap();
        let direct = m.steady_state_cores(&psi).unwrap();
        assert!(via_r.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn propagator_matches_pade_expm() {
        let m = model(1, 2, 0.03);
        for dt in [1e-3, 0.05, 1.0, 20.0] {
            let via_eigen = m.propagator(dt).unwrap();
            let via_pade = expm_scaled(&m.a_matrix(), dt).unwrap();
            let scale = via_pade.max_abs().max(1.0);
            assert!(
                via_eigen.max_abs_diff(&via_pade) / scale < 1e-8,
                "dt={dt}, diff={}",
                via_eigen.max_abs_diff(&via_pade)
            );
        }
    }

    #[test]
    fn propagator_cache_hits() {
        let m = model(1, 2, 0.03);
        let _ = m.propagator(0.5).unwrap();
        let _ = m.propagator(0.5).unwrap();
        let _ = m.propagator(0.25).unwrap();
        assert_eq!(m.cached_propagators(), 2);
    }

    #[test]
    fn advance_converges_to_steady_state() {
        let m = model(1, 3, 0.03);
        let psi = [10.0, 10.0, 10.0];
        let t_inf = m.steady_state(&psi).unwrap();
        let from_zero = m.advance(&Vector::zeros(m.n_nodes()), &psi, 5000.0).unwrap();
        assert!(from_zero.max_abs_diff(&t_inf) < 1e-6);
    }

    #[test]
    fn advance_zero_dt_is_identity() {
        let m = model(1, 2, 0.03);
        let t0 = Vector::from_fn(m.n_nodes(), |i| 0.3 * i as f64 + 0.5);
        let t1 = m.advance(&t0, &[5.0, 5.0], 0.0).unwrap();
        assert!(t1.max_abs_diff(&t0) < 1e-12);
    }

    #[test]
    fn advance_rejects_bad_shapes() {
        let m = model(1, 2, 0.03);
        assert!(m.advance(&Vector::zeros(2), &[1.0, 1.0], 0.1).is_err());
        assert!(m.steady_state(&[1.0]).is_err());
        assert!(m.propagator(-1.0).is_err());
        assert!(m.propagator(f64::NAN).is_err());
    }

    #[test]
    fn monotone_cooldown_property() {
        // Property 1 of the paper: powering everything down from a hot state
        // makes every node decay monotonically (sampled check).
        let m = model(1, 3, 0.03);
        let hot = m.steady_state(&[15.0, 18.0, 12.0]).unwrap();
        let off = [0.0, 0.0, 0.0];
        let mut prev = hot;
        for _ in 0..20 {
            let next = m.advance(&prev, &off, 0.5).unwrap();
            assert!(next.le_elementwise(&prev, 1e-9));
            prev = next;
        }
    }

    #[test]
    fn more_power_means_hotter_everywhere() {
        let m = model(3, 3, 0.03);
        let low = m.steady_state_cores(&[5.0; 9]).unwrap();
        let high = m.steady_state_cores(&[6.0; 9]).unwrap();
        assert!(low.le_elementwise(&high, 0.0));
    }

    #[test]
    fn center_core_is_hottest_on_uniform_grid() {
        let m = model(3, 3, 0.03);
        let t = m.steady_state_cores(&[10.0; 9]).unwrap();
        assert_eq!(t.argmax(), Some(4), "center of the 3x3 grid must be hottest: {t}");
    }
}
