//! Assembly of the lumped RC network from a floorplan.

use crate::{Floorplan, RcConfig, Result, ThermalError};
use mosc_linalg::Matrix;

/// Width of the spreader/sink rim beyond the die edge (m). Matches the
/// paper's 4 mm core pitch: the package extends roughly one core pitch past
/// the die on each side, which is what makes boundary cores run cooler than
/// center cores (`HotSpot` models the same effect with its periphery nodes).
pub const RIM_WIDTH: f64 = 4.0e-3;

/// The assembled RC network: a symmetric positive-definite conductance matrix
/// `G` (graph Laplacian plus ambient legs), a diagonal capacitance vector
/// `C`, and the node bookkeeping.
///
/// Node layout: die nodes for every core first (`0..n_cores`, in floorplan
/// order), then one spreader node per sink-side core, then one sink node per
/// sink-side core, then two rim nodes (spreader periphery, sink periphery)
/// lumping the package area that extends beyond the die. Ambient is the
/// ground reference (temperature 0).
#[derive(Debug, Clone)]
pub struct RcNetwork {
    g: Matrix,
    c: Vec<f64>,
    n_cores: usize,
    n_nodes: usize,
    floorplan: Floorplan,
}

impl RcNetwork {
    /// Builds the network for `floorplan` under `config`.
    ///
    /// # Errors
    /// Propagates config validation failures; rejects floorplans whose
    /// sink-side layer is empty (no heat-removal path).
    pub fn build(floorplan: &Floorplan, config: &RcConfig) -> Result<Self> {
        config.validate()?;
        let sink_side = floorplan.sink_side_cores();
        if sink_side.is_empty() {
            return Err(ThermalError::BadFloorplan {
                what: "no cores on the sink-side layer (layer 0)".into(),
            });
        }

        let n_cores = floorplan.n_cores();
        let n_sink = sink_side.len();
        // die … | spreader … | sink … | spreader_rim | sink_rim
        let n_nodes = n_cores + 2 * n_sink + 2;
        let mut g = Matrix::zeros(n_nodes, n_nodes);
        let mut c = vec![0.0; n_nodes];

        let spreader_of = |k: usize| n_cores + k;
        let sink_of = |k: usize| n_cores + n_sink + k;
        let spreader_rim = n_cores + 2 * n_sink;
        let sink_rim = n_cores + 2 * n_sink + 1;

        let cores = floorplan.cores();

        // Exposed (non-shared) edge length of each sink-side core, which is
        // where it couples into the rim.
        let adjacency = floorplan.lateral_adjacency();
        let mut exposed: Vec<f64> =
            sink_side.iter().map(|&ci| 2.0 * (cores[ci].w + cores[ci].h)).collect();
        for &(i, j, edge) in &adjacency {
            if let Some(ki) = sink_side.iter().position(|&c| c == i) {
                exposed[ki] -= edge;
            }
            if let Some(kj) = sink_side.iter().position(|&c| c == j) {
                exposed[kj] -= edge;
            }
        }
        let total_exposed: f64 = exposed.iter().sum();
        let rim_area = total_exposed.max(1e-9) * RIM_WIDTH;

        // Capacitances.
        for (i, core) in cores.iter().enumerate() {
            c[i] = config.c_die_area * core.area();
        }
        for (k, &ci) in sink_side.iter().enumerate() {
            let area = cores[ci].area();
            c[spreader_of(k)] = config.c_spreader_area * area;
            c[sink_of(k)] = config.c_sink_area * area;
        }
        c[spreader_rim] = config.c_spreader_area * rim_area;
        c[sink_rim] = config.c_sink_area * rim_area;

        let add = |a: usize, b: usize, cond: f64, g: &mut Matrix| {
            g[(a, a)] += cond;
            g[(b, b)] += cond;
            g[(a, b)] -= cond;
            g[(b, a)] -= cond;
        };

        // Lateral die-die coupling.
        for &(i, j, edge) in &adjacency {
            add(i, j, config.g_lat_die_per_m * edge, &mut g);
        }

        // 3-D inter-layer coupling (lower layer is nearer the sink).
        for (lo, hi) in floorplan.vertical_adjacency() {
            let overlap = overlap_area(floorplan, lo, hi);
            add(lo, hi, overlap / config.r_interlayer_area, &mut g);
        }

        // Vertical stack under each sink-side core plus lateral coupling in
        // the spreader and sink layers, including the rim.
        let total_area: f64 = sink_side.iter().map(|&ci| cores[ci].area()).sum::<f64>() + rim_area;
        for (k, &ci) in sink_side.iter().enumerate() {
            let area = cores[ci].area();
            add(ci, spreader_of(k), area / config.r_die_spreader_area, &mut g);
            add(spreader_of(k), sink_of(k), area / config.r_spreader_sink_area, &mut g);
            // Area-proportional share of the package's fixed total convection
            // resistance (legs in parallel reconstruct r_sink_ambient_total).
            let leg = (area / total_area) / config.r_sink_ambient_total;
            g[(sink_of(k), sink_of(k))] += leg;
            // Rim coupling along the exposed edges.
            if exposed[k] > 0.0 {
                add(spreader_of(k), spreader_rim, config.g_lat_spreader_per_m * exposed[k], &mut g);
                add(sink_of(k), sink_rim, config.g_lat_sink_per_m * exposed[k], &mut g);
            }
        }
        for (k1, &c1) in sink_side.iter().enumerate() {
            for (k2, &c2) in sink_side.iter().enumerate().skip(k1 + 1) {
                let edge = cores[c1].shared_edge(&cores[c2]);
                if edge > 0.0 {
                    add(
                        spreader_of(k1),
                        spreader_of(k2),
                        config.g_lat_spreader_per_m * edge,
                        &mut g,
                    );
                    add(sink_of(k1), sink_of(k2), config.g_lat_sink_per_m * edge, &mut g);
                }
            }
        }
        // Rim vertical path and its ambient share.
        add(spreader_rim, sink_rim, rim_area / config.r_spreader_sink_area, &mut g);
        g[(sink_rim, sink_rim)] += (rim_area / total_area) / config.r_sink_ambient_total;

        Ok(Self { g, c, n_cores, n_nodes, floorplan: floorplan.clone() })
    }

    /// The conductance matrix `G` (SPD: Laplacian plus ambient legs).
    #[inline]
    #[must_use]
    pub fn conductance(&self) -> &Matrix {
        &self.g
    }

    /// Per-node capacitances (J/K).
    #[inline]
    #[must_use]
    pub fn capacitance(&self) -> &[f64] {
        &self.c
    }

    /// Number of core (die) nodes; these occupy indices `0..n_cores` and are
    /// the nodes whose temperature the peak constraint governs.
    #[inline]
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Total node count.
    #[inline]
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The floorplan the network was built from.
    #[inline]
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }
}

fn overlap_area(f: &Floorplan, i: usize, j: usize) -> f64 {
    let (a, b) = (&f.cores()[i], &f.cores()[j]);
    let x = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
    let y = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
    x.max(0.0) * y.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_linalg::SymmetricEigen;

    fn net(rows: usize, cols: usize) -> RcNetwork {
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        RcNetwork::build(&f, &RcConfig::default()).unwrap()
    }

    #[test]
    fn node_counts() {
        let n = net(1, 3);
        assert_eq!(n.n_cores(), 3);
        assert_eq!(n.n_nodes(), 11); // 3 die + 3 spreader + 3 sink + 2 rim
    }

    #[test]
    fn conductance_is_symmetric_spd() {
        let n = net(2, 3);
        let g = n.conductance();
        assert!(g.is_symmetric(1e-12));
        let eig = SymmetricEigen::new(g).unwrap();
        assert!(
            eig.values.min() > 0.0,
            "G must be positive definite, min eig {}",
            eig.values.min()
        );
    }

    #[test]
    fn row_sums_equal_ambient_legs() {
        // Row sums of a Laplacian-plus-legs matrix equal the ambient leg of
        // that node: zero for die/spreader nodes, positive for sink nodes and
        // the sink rim; in total they reconstruct 1/r_sink_ambient_total.
        let n = net(1, 2);
        let g = n.conductance();
        let n_nodes = n.n_nodes();
        let mut total_leg = 0.0;
        for i in 0..n_nodes {
            let row_sum: f64 = g.row(i).iter().sum();
            let is_sink = (4..6).contains(&i) || i == n_nodes - 1;
            if is_sink {
                assert!(row_sum > 0.0, "sink node {i} must have an ambient leg");
                total_leg += row_sum;
            } else {
                assert!(row_sum.abs() < 1e-9, "interior node {i} leaks {row_sum}");
            }
        }
        let expected = 1.0 / RcConfig::default().r_sink_ambient_total;
        assert!(
            (total_leg - expected).abs() < 1e-9 * expected,
            "total leg {total_leg} vs {expected}"
        );
    }

    #[test]
    fn capacitances_positive_and_ordered() {
        let n = net(1, 2);
        let c = n.capacitance();
        assert!(c.iter().all(|&x| x > 0.0));
        // Sink mass >> spreader mass >> die mass per core column.
        assert!(c[4] > c[2]); // sink vs spreader (first column)
        assert!(c[2] > c[0]); // spreader vs die
    }

    #[test]
    fn single_core_steady_state_is_physical() {
        let n = net(1, 1);
        assert_eq!(n.n_nodes(), 5);
        let g = n.conductance();
        let lu = mosc_linalg::Lu::new(g).unwrap();
        let mut p = mosc_linalg::Vector::zeros(5);
        p[0] = 10.0;
        let t = lu.solve_vec(&p).unwrap();
        // Monotone down the stack, everything above ambient.
        assert!(t[0] > t[1] && t[1] > t[2] && t[2] > 0.0);
        // Bounded below by pure-convection floor and above by the no-rim path.
        let cfg = RcConfig::default();
        let area = 16e-6;
        let upper = 10.0
            * ((cfg.r_die_spreader_area + cfg.r_spreader_sink_area) / area
                + cfg.r_sink_ambient_total);
        assert!(t[0] > 10.0 * cfg.r_sink_ambient_total * 0.5);
        assert!(t[0] < upper);
    }

    #[test]
    fn stack3d_upper_layer_runs_hotter() {
        let f = Floorplan::stack3d(2, 1, 1, 4e-3, 4e-3).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        assert_eq!(n.n_cores(), 2);
        assert_eq!(n.n_nodes(), 6); // 2 die + 1 spreader + 1 sink + 2 rim
        let lu = mosc_linalg::Lu::new(n.conductance()).unwrap();
        // Same power on both layers: the far-from-sink layer is hotter.
        let mut p = mosc_linalg::Vector::zeros(6);
        p[0] = 10.0;
        p[1] = 10.0;
        let t = lu.solve_vec(&p).unwrap();
        assert!(t[1] > t[0], "upper layer {} must exceed lower {}", t[1], t[0]);
    }

    #[test]
    fn rejects_floorplan_without_sink_layer() {
        // All cores on layer 1, none on layer 0.
        let c = crate::CoreGeom { x: 0.0, y: 0.0, w: 1e-3, h: 1e-3, layer: 1 };
        let f = Floorplan::new(vec![c]).unwrap();
        assert!(RcNetwork::build(&f, &RcConfig::default()).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let cfg = RcConfig { g_lat_die_per_m: -1.0, ..RcConfig::default() };
        assert!(RcNetwork::build(&f, &cfg).is_err());
    }

    #[test]
    fn coupling_decays_with_distance() {
        // In a 1x3 row under power on core 0 only, core 1 is warmer than core 2.
        let n = net(1, 3);
        let lu = mosc_linalg::Lu::new(n.conductance()).unwrap();
        let mut p = mosc_linalg::Vector::zeros(n.n_nodes());
        p[0] = 15.0;
        let t = lu.solve_vec(&p).unwrap();
        assert!(t[0] > t[1] && t[1] > t[2]);
        assert!(t[2] > 0.0, "all nodes above ambient under any heating");
    }

    #[test]
    fn more_cores_run_hotter_under_uniform_power() {
        // The fixed-size sink makes per-core headroom shrink with core count:
        // the hottest core of a 3x3 under 10 W/core beats a 1x2's under the
        // same per-core power.
        let small = net(1, 2);
        let big = net(3, 3);
        let solve_max = |n: &RcNetwork, w: f64| {
            let lu = mosc_linalg::Lu::new(n.conductance()).unwrap();
            let mut p = mosc_linalg::Vector::zeros(n.n_nodes());
            for i in 0..n.n_cores() {
                p[i] = w;
            }
            let t = lu.solve_vec(&p).unwrap();
            (0..n.n_cores()).fold(f64::NEG_INFINITY, |m, i| m.max(t[i]))
        };
        assert!(solve_max(&big, 10.0) > solve_max(&small, 10.0) + 5.0);
    }
}
