//! Fixed-step RK4 reference integrator.
//!
//! The analytic propagator of [`crate::ThermalModel`] is exact for the LTI
//! model, but exactness claims need an independent witness: this module
//! integrates `dT/dt = A·T + B` numerically and is used by the test suite to
//! cross-validate eq. (3)/(4) implementations, and by the trace-producing
//! experiment binaries where dense time sampling is wanted anyway.

use crate::{Result, ThermalError, ThermalModel, Trace};
use mosc_linalg::{Matrix, Vector};

/// RK4 steps taken across all integrations (batched per call).
static RK4_STEPS: mosc_obs::Counter = mosc_obs::Counter::new("thermal.rk4_steps");

/// Integrates the model under constant per-core power for `duration`
/// seconds, recording every `record_every`-th step into a [`Trace`].
///
/// # Errors
/// Rejects non-positive step sizes and dimension mismatches.
pub fn integrate_constant(
    model: &ThermalModel,
    t0: &Vector,
    psi_cores: &[f64],
    duration: f64,
    dt: f64,
    record_every: usize,
) -> Result<(Vector, Trace)> {
    let segments = [(psi_cores.to_vec(), duration)];
    integrate_piecewise(model, t0, &segments, dt, record_every)
}

/// Integrates the model under a piecewise-constant power schedule given as
/// `(psi_cores, duration)` segments.
///
/// # Errors
/// Rejects non-positive `dt`, empty schedules, negative durations and
/// dimension mismatches.
pub fn integrate_piecewise(
    model: &ThermalModel,
    t0: &Vector,
    segments: &[(Vec<f64>, f64)],
    dt: f64,
    record_every: usize,
) -> Result<(Vector, Trace)> {
    let _span = mosc_obs::span("thermal.integrate");
    if !(dt.is_finite() && dt > 0.0) {
        return Err(ThermalError::InvalidParameter { what: "dt must be finite and > 0" });
    }
    if segments.is_empty() {
        return Err(ThermalError::InvalidParameter { what: "schedule must have segments" });
    }
    if t0.len() != model.n_nodes() {
        return Err(ThermalError::DimensionMismatch {
            expected: model.n_nodes(),
            actual: t0.len(),
            op: "integrate",
        });
    }
    let record_every = record_every.max(1);
    let a = model.a_matrix();
    let c = model.network().capacitance();

    let mut state = t0.clone();
    let mut time = 0.0;
    let mut trace = Trace::new(model.n_cores());
    trace.push(0.0, state.clone());
    let mut step_count = 0usize;

    for (psi, duration) in segments {
        if !duration.is_finite() || *duration < 0.0 {
            return Err(ThermalError::InvalidParameter { what: "segment duration must be >= 0" });
        }
        let b = input_vector(model, psi, c)?;
        let n_steps = (duration / dt).ceil() as usize;
        for step in 0..n_steps {
            // Final step may be shorter to land exactly on the boundary.
            let h = if step + 1 == n_steps { duration - dt * step as f64 } else { dt };
            if h <= 0.0 {
                break;
            }
            state = rk4_step(&a, &b, &state, h);
            time += h;
            step_count += 1;
            if step_count.is_multiple_of(record_every) {
                trace.push(time, state.clone());
            }
        }
    }
    if trace.times().last().copied() != Some(time) {
        trace.push(time, state.clone());
    }
    RK4_STEPS.add(step_count as u64);
    Ok((state, trace))
}

fn input_vector(model: &ThermalModel, psi_cores: &[f64], c: &[f64]) -> Result<Vector> {
    let scattered = model.scatter_power(psi_cores)?;
    Ok(Vector::from_fn(scattered.len(), |i| scattered[i] / c[i]))
}

/// One classical RK4 step of `x' = A·x + b`.
fn rk4_step(a: &Matrix, b: &Vector, x: &Vector, h: f64) -> Vector {
    let f = |state: &Vector| -> Vector {
        let ax = a.matvec(state).expect("dimensions fixed by model");
        &ax + b
    };
    let k1 = f(x);
    let k2 = f(&x.axpy(h / 2.0, &k1));
    let k3 = f(&x.axpy(h / 2.0, &k2));
    let k4 = f(&x.axpy(h, &k3));
    // x + h/6 (k1 + 2k2 + 2k3 + k4)
    let mut incr = k1;
    incr += &k2.scaled(2.0);
    incr += &k3.scaled(2.0);
    incr += &k4;
    x.axpy(h / 6.0, &incr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floorplan, RcConfig, RcNetwork};

    fn model() -> ThermalModel {
        let f = Floorplan::paper_grid(1, 2).unwrap();
        let n = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        ThermalModel::new(n, 0.03).unwrap()
    }

    #[test]
    fn rk4_matches_analytic_propagator() {
        let m = model();
        let psi = [12.0, 6.0];
        let t0 = Vector::zeros(m.n_nodes());
        let horizon = 0.2;
        let analytic = m.advance(&t0, &psi, horizon).unwrap();
        let (numeric, _) = integrate_constant(&m, &t0, &psi, horizon, 1e-5, 1000).unwrap();
        assert!(
            analytic.max_abs_diff(&numeric) < 1e-6,
            "diff = {}",
            analytic.max_abs_diff(&numeric)
        );
    }

    #[test]
    fn piecewise_schedule_matches_chained_advance() {
        let m = model();
        let t0 = Vector::zeros(m.n_nodes());
        let segments = [(vec![15.0, 2.0], 0.05), (vec![2.0, 15.0], 0.08)];
        let mid = m.advance(&t0, &segments[0].0, segments[0].1).unwrap();
        let analytic = m.advance(&mid, &segments[1].0, segments[1].1).unwrap();
        let (numeric, trace) = integrate_piecewise(&m, &t0, &segments, 1e-5, 500).unwrap();
        assert!(analytic.max_abs_diff(&numeric) < 1e-6);
        // Trace covers the full horizon.
        assert!((trace.times().last().unwrap() - 0.13).abs() < 1e-9);
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_records_requested_density() {
        let m = model();
        let t0 = Vector::zeros(m.n_nodes());
        let (_, trace) = integrate_constant(&m, &t0, &[5.0, 5.0], 0.01, 1e-4, 10).unwrap();
        // 100 steps, every 10th recorded + initial + final.
        assert!(trace.len() >= 11 && trace.len() <= 12, "len = {}", trace.len());
    }

    #[test]
    fn input_validation() {
        let m = model();
        let t0 = Vector::zeros(m.n_nodes());
        assert!(integrate_constant(&m, &t0, &[1.0, 1.0], 0.1, 0.0, 1).is_err());
        assert!(integrate_constant(&m, &t0, &[1.0], 0.1, 1e-4, 1).is_err());
        assert!(integrate_constant(&m, &Vector::zeros(2), &[1.0, 1.0], 0.1, 1e-4, 1).is_err());
        assert!(integrate_piecewise(&m, &t0, &[], 1e-4, 1).is_err());
        assert!(integrate_piecewise(&m, &t0, &[(vec![1.0, 1.0], -0.5)], 1e-4, 1).is_err());
    }

    #[test]
    fn heating_trace_is_monotone_under_constant_power() {
        let m = model();
        let t0 = Vector::zeros(m.n_nodes());
        let (_, trace) = integrate_constant(&m, &t0, &[10.0, 10.0], 0.5, 1e-4, 100).unwrap();
        let series = trace.core_series(0);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "heating from ambient must be monotone");
        }
    }
}
