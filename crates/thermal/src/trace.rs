//! Temperature-trace recording.

use mosc_linalg::Vector;

/// A recorded temperature trace: sample times paired with full node
/// temperature vectors. Used by the figure-reproduction binaries (Fig. 2,
/// Fig. 4) and by the sampling-based peak-temperature evaluator for
/// non-step-up schedules.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    times: Vec<f64>,
    temps: Vec<Vector>,
    n_cores: usize,
}

impl Trace {
    /// Creates an empty trace whose samples cover `n_cores` core nodes (the
    /// first `n_cores` entries of every sample).
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        Self { times: Vec::new(), temps: Vec::new(), n_cores }
    }

    /// Creates an empty trace with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(n_cores: usize, capacity: usize) -> Self {
        Self { times: Vec::with_capacity(capacity), temps: Vec::with_capacity(capacity), n_cores }
    }

    /// Appends a sample. Times are expected non-decreasing; violations are a
    /// caller bug and are caught by a debug assertion.
    pub fn push(&mut self, time: f64, temps: Vector) {
        debug_assert!(
            self.times.last().is_none_or(|&last| time >= last),
            "trace times must be non-decreasing"
        );
        self.times.push(time);
        self.temps.push(temps);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of core nodes per sample.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Sample times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample temperature vectors.
    #[must_use]
    pub fn temps(&self) -> &[Vector] {
        &self.temps
    }

    /// Peak core temperature across the whole trace, with the time and core
    /// at which it occurs. `None` for an empty trace.
    #[must_use]
    pub fn peak(&self) -> Option<PeakSample> {
        let mut best: Option<PeakSample> = None;
        for (&time, temps) in self.times.iter().zip(&self.temps) {
            for core in 0..self.n_cores.min(temps.len()) {
                let t = temps[core];
                if best.as_ref().is_none_or(|b| t > b.temp) {
                    best = Some(PeakSample { time, core, temp: t });
                }
            }
        }
        best
    }

    /// Per-core maximum over the trace; empty vector for an empty trace.
    #[must_use]
    pub fn per_core_max(&self) -> Vector {
        if self.temps.is_empty() {
            return Vector::zeros(0);
        }
        Vector::from_fn(self.n_cores, |c| {
            self.temps.iter().map(|t| t[c]).fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// The time series of one core's temperature.
    #[must_use]
    pub fn core_series(&self, core: usize) -> Vec<(f64, f64)> {
        self.times.iter().zip(&self.temps).map(|(&t, temps)| (t, temps[core])).collect()
    }

    /// Renders the trace as CSV (`time,core0,core1,…`), offset by
    /// `ambient_c` so the output is in °C.
    #[must_use]
    pub fn to_csv(&self, ambient_c: f64) -> String {
        let mut out = String::from("time_s");
        for c in 0..self.n_cores {
            out.push_str(&format!(",core{c}_c"));
        }
        out.push('\n');
        for (t, temps) in self.times.iter().zip(&self.temps) {
            out.push_str(&format!("{t:.6}"));
            for c in 0..self.n_cores {
                out.push_str(&format!(",{:.4}", temps[c] + ambient_c));
            }
            out.push('\n');
        }
        out
    }
}

/// The location of a trace's peak temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSample {
    /// Sample time (s).
    pub time: f64,
    /// Core index.
    pub core: usize,
    /// Temperature (relative to ambient).
    pub temp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut tr = Trace::new(2);
        tr.push(0.0, Vector::from_slice(&[1.0, 2.0, 0.5]));
        tr.push(1.0, Vector::from_slice(&[3.0, 1.0, 0.6]));
        tr.push(2.0, Vector::from_slice(&[2.0, 2.5, 0.4]));
        tr
    }

    #[test]
    fn peak_finds_global_max_over_cores_only() {
        let tr = sample_trace();
        let p = tr.peak().unwrap();
        assert_eq!(p.core, 0);
        assert_eq!(p.time, 1.0);
        assert_eq!(p.temp, 3.0);
        assert!(Trace::new(2).peak().is_none());
    }

    #[test]
    fn per_core_max() {
        let tr = sample_trace();
        assert_eq!(tr.per_core_max().as_slice(), &[3.0, 2.5]);
        assert!(Trace::new(1).per_core_max().is_empty());
    }

    #[test]
    fn core_series_extraction() {
        let tr = sample_trace();
        let s = tr.core_series(1);
        assert_eq!(s, vec![(0.0, 2.0), (1.0, 1.0), (2.0, 2.5)]);
    }

    #[test]
    fn csv_rendering() {
        let tr = sample_trace();
        let csv = tr.to_csv(35.0);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "time_s,core0_c,core1_c");
        assert!(lines.next().unwrap().starts_with("0.000000,36.0000,37.0000"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn capacity_and_len() {
        let mut tr = Trace::with_capacity(1, 16);
        assert!(tr.is_empty());
        tr.push(0.0, Vector::zeros(1));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.n_cores(), 1);
    }
}
