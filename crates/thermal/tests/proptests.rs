//! Property-based tests for the thermal substrate.

use mosc_linalg::{SymmetricEigen, Vector};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};
use proptest::prelude::*;

fn grid_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=3, 1usize..=3)
}

fn power_profile(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..20.0, n..=n)
}

fn model(rows: usize, cols: usize) -> ThermalModel {
    let f = Floorplan::paper_grid(rows, cols).expect("floorplan");
    let n = RcNetwork::build(&f, &RcConfig::default()).expect("network");
    ThermalModel::new(n, 0.03).expect("model")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conductance_is_spd_for_all_grids((rows, cols) in grid_dims()) {
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let net = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let g = net.conductance();
        prop_assert!(g.is_symmetric(1e-12));
        let eig = SymmetricEigen::new(g).unwrap();
        prop_assert!(eig.values.min() > 0.0);
    }

    #[test]
    fn steady_state_is_linear_and_monotone((rows, cols) in grid_dims(), seed in 0u64..500) {
        let m = model(rows, cols);
        let n = m.n_cores();
        // Deterministic pseudo-profiles from the seed.
        let p1: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 17) as f64).collect();
        let p2: Vec<f64> = (0..n).map(|i| ((seed * 3 + i as u64) % 11) as f64).collect();
        let t1 = m.steady_state_cores(&p1).unwrap();
        let t2 = m.steady_state_cores(&p2).unwrap();
        let sum_profile: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let t_sum = m.steady_state_cores(&sum_profile).unwrap();
        // Linearity (superposition).
        prop_assert!(t_sum.max_abs_diff(&(&t1 + &t2)) < 1e-9);
        // Monotonicity: extra power never cools any core.
        prop_assert!(t1.le_elementwise(&t_sum, 1e-9));
        prop_assert!(t2.le_elementwise(&t_sum, 1e-9));
    }

    #[test]
    fn advance_composes((rows, cols) in grid_dims(), psi in power_profile(9), dt in 1e-4f64..0.5) {
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let t0 = Vector::zeros(m.n_nodes());
        let whole = m.advance(&t0, psi, 2.0 * dt).unwrap();
        let half = m.advance(&t0, psi, dt).unwrap();
        let halves = m.advance(&half, psi, dt).unwrap();
        prop_assert!(whole.max_abs_diff(&halves) < 1e-8);
    }

    #[test]
    fn temperatures_stay_nonnegative_and_bounded((rows, cols) in grid_dims(), psi in power_profile(9), dt in 1e-3f64..1.0) {
        // Heating from ambient with nonnegative power: temperatures stay in
        // [0, T∞] element-wise.
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let t_inf = m.steady_state(psi).unwrap();
        let mut t = Vector::zeros(m.n_nodes());
        for _ in 0..5 {
            t = m.advance(&t, psi, dt).unwrap();
            for i in 0..t.len() {
                prop_assert!(t[i] >= -1e-9, "node {i} went below ambient");
                prop_assert!(t[i] <= t_inf[i] + 1e-9, "node {i} overshot steady state");
            }
        }
    }

    #[test]
    fn propagator_rows_are_substochastic((rows, cols) in grid_dims(), dt in 1e-3f64..10.0) {
        // Without leakage feedback (β = 0), e^{A·dt} is nonnegative with row
        // sums <= 1: heat is conserved or lost to ambient, never created.
        // (With β > 0 the die rows may exceed 1 — leakage injects heat
        // proportional to temperature; nonnegativity still holds and is
        // checked for the leaky model too.)
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let net = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let m0 = ThermalModel::new(net.clone(), 0.0).unwrap();
        let phi = m0.propagator(dt).unwrap();
        for i in 0..m0.n_nodes() {
            let mut row_sum = 0.0;
            for j in 0..m0.n_nodes() {
                prop_assert!(phi[(i, j)] >= -1e-10, "negative propagator entry ({i},{j})");
                row_sum += phi[(i, j)];
            }
            prop_assert!(row_sum <= 1.0 + 1e-9, "row {i} sums to {row_sum}");
        }
        let m_leak = ThermalModel::new(net, 0.03).unwrap();
        let phi_leak = m_leak.propagator(dt).unwrap();
        for v in phi_leak.as_slice() {
            prop_assert!(*v >= -1e-10);
        }
    }

    #[test]
    fn hotter_start_stays_hotter((rows, cols) in grid_dims(), psi in power_profile(9), dt in 1e-3f64..1.0) {
        // Order preservation of the positive propagator: T0 <= T0' (element-
        // wise) implies T(dt) <= T'(dt).
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let cold = Vector::zeros(m.n_nodes());
        let warm = Vector::filled(m.n_nodes(), 3.0);
        let t_cold = m.advance(&cold, psi, dt).unwrap();
        let t_warm = m.advance(&warm, psi, dt).unwrap();
        prop_assert!(t_cold.le_elementwise(&t_warm, 1e-9));
    }

    #[test]
    fn beta_increases_temperatures((rows, cols) in grid_dims(), psi in power_profile(9)) {
        // Leakage feedback can only heat.
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let n1 = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let n2 = n1.clone();
        let m_no_leak = ThermalModel::new(n1, 0.0).unwrap();
        let m_leak = ThermalModel::new(n2, 0.05).unwrap();
        let psi = &psi[..m_leak.n_cores()];
        let t0 = m_no_leak.steady_state_cores(psi).unwrap();
        let t1 = m_leak.steady_state_cores(psi).unwrap();
        prop_assert!(t0.le_elementwise(&t1, 1e-9));
    }
}
