//! Property-based tests for the thermal substrate.

use mosc_linalg::{SymmetricEigen, Vector};
use mosc_testutil::{propcheck_cases, Rng64};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};

const CASES: usize = 32;

fn grid_dims(rng: &mut Rng64) -> (usize, usize) {
    (rng.gen_range(1..=3usize), rng.gen_range(1..=3usize))
}

fn power_profile(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(0.0..20.0)).collect()
}

fn model(rows: usize, cols: usize) -> ThermalModel {
    let f = Floorplan::paper_grid(rows, cols).expect("floorplan");
    let n = RcNetwork::build(&f, &RcConfig::default()).expect("network");
    ThermalModel::new(n, 0.03).expect("model")
}

#[test]
fn conductance_is_spd_for_all_grids() {
    propcheck_cases("conductance_is_spd_for_all_grids", CASES, |rng| {
        let (rows, cols) = grid_dims(rng);
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let net = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let g = net.conductance();
        assert!(g.is_symmetric(1e-12));
        let eig = SymmetricEigen::new(g).unwrap();
        assert!(eig.values.min() > 0.0);
    });
}

#[test]
fn steady_state_is_linear_and_monotone() {
    propcheck_cases("steady_state_is_linear_and_monotone", CASES, |rng| {
        let (rows, cols) = grid_dims(rng);
        let seed = rng.gen_range(0..500usize) as u64;
        let m = model(rows, cols);
        let n = m.n_cores();
        // Deterministic pseudo-profiles from the seed.
        let p1: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 17) as f64).collect();
        let p2: Vec<f64> = (0..n).map(|i| ((seed * 3 + i as u64) % 11) as f64).collect();
        let t1 = m.steady_state_cores(&p1).unwrap();
        let t2 = m.steady_state_cores(&p2).unwrap();
        let sum_profile: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let t_sum = m.steady_state_cores(&sum_profile).unwrap();
        // Linearity (superposition).
        assert!(t_sum.max_abs_diff(&(&t1 + &t2)) < 1e-9);
        // Monotonicity: extra power never cools any core.
        assert!(t1.le_elementwise(&t_sum, 1e-9));
        assert!(t2.le_elementwise(&t_sum, 1e-9));
    });
}

#[test]
fn advance_composes() {
    propcheck_cases("advance_composes", CASES, |rng| {
        let (rows, cols) = grid_dims(rng);
        let psi = power_profile(rng, 9);
        let dt = rng.gen_range(1e-4..0.5);
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let t0 = Vector::zeros(m.n_nodes());
        let whole = m.advance(&t0, psi, 2.0 * dt).unwrap();
        let half = m.advance(&t0, psi, dt).unwrap();
        let halves = m.advance(&half, psi, dt).unwrap();
        assert!(whole.max_abs_diff(&halves) < 1e-8);
    });
}

#[test]
fn temperatures_stay_nonnegative_and_bounded() {
    propcheck_cases("temperatures_stay_nonnegative_and_bounded", CASES, |rng| {
        // Heating from ambient with nonnegative power: temperatures stay in
        // [0, T∞] element-wise.
        let (rows, cols) = grid_dims(rng);
        let psi = power_profile(rng, 9);
        let dt = rng.gen_range(1e-3..1.0);
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let t_inf = m.steady_state(psi).unwrap();
        let mut t = Vector::zeros(m.n_nodes());
        for _ in 0..5 {
            t = m.advance(&t, psi, dt).unwrap();
            for i in 0..t.len() {
                assert!(t[i] >= -1e-9, "node {i} went below ambient");
                assert!(t[i] <= t_inf[i] + 1e-9, "node {i} overshot steady state");
            }
        }
    });
}

#[test]
fn propagator_rows_are_substochastic() {
    propcheck_cases("propagator_rows_are_substochastic", CASES, |rng| {
        // Without leakage feedback (β = 0), e^{A·dt} is nonnegative with row
        // sums <= 1: heat is conserved or lost to ambient, never created.
        // (With β > 0 the die rows may exceed 1 — leakage injects heat
        // proportional to temperature; nonnegativity still holds and is
        // checked for the leaky model too.)
        let (rows, cols) = grid_dims(rng);
        let dt = rng.gen_range(1e-3..10.0);
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let net = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let m0 = ThermalModel::new(net.clone(), 0.0).unwrap();
        let phi = m0.propagator(dt).unwrap();
        for i in 0..m0.n_nodes() {
            let mut row_sum = 0.0;
            for j in 0..m0.n_nodes() {
                assert!(phi[(i, j)] >= -1e-10, "negative propagator entry ({i},{j})");
                row_sum += phi[(i, j)];
            }
            assert!(row_sum <= 1.0 + 1e-9, "row {i} sums to {row_sum}");
        }
        let m_leak = ThermalModel::new(net, 0.03).unwrap();
        let phi_leak = m_leak.propagator(dt).unwrap();
        for v in phi_leak.as_slice() {
            assert!(*v >= -1e-10);
        }
    });
}

#[test]
fn hotter_start_stays_hotter() {
    propcheck_cases("hotter_start_stays_hotter", CASES, |rng| {
        // Order preservation of the positive propagator: T0 <= T0' (element-
        // wise) implies T(dt) <= T'(dt).
        let (rows, cols) = grid_dims(rng);
        let psi = power_profile(rng, 9);
        let dt = rng.gen_range(1e-3..1.0);
        let m = model(rows, cols);
        let psi = &psi[..m.n_cores()];
        let cold = Vector::zeros(m.n_nodes());
        let warm = Vector::filled(m.n_nodes(), 3.0);
        let t_cold = m.advance(&cold, psi, dt).unwrap();
        let t_warm = m.advance(&warm, psi, dt).unwrap();
        assert!(t_cold.le_elementwise(&t_warm, 1e-9));
    });
}

#[test]
fn beta_increases_temperatures() {
    propcheck_cases("beta_increases_temperatures", CASES, |rng| {
        // Leakage feedback can only heat.
        let (rows, cols) = grid_dims(rng);
        let psi = power_profile(rng, 9);
        let f = Floorplan::paper_grid(rows, cols).unwrap();
        let n1 = RcNetwork::build(&f, &RcConfig::default()).unwrap();
        let n2 = n1.clone();
        let m_no_leak = ThermalModel::new(n1, 0.0).unwrap();
        let m_leak = ThermalModel::new(n2, 0.05).unwrap();
        let psi = &psi[..m_leak.n_cores()];
        let t0 = m_no_leak.steady_state_cores(psi).unwrap();
        let t1 = m_leak.steady_state_cores(psi).unwrap();
        assert!(t0.le_elementwise(&t1, 1e-9));
    });
}
