//! Seeded random generators for the experiment suite.
//!
//! Everything here is deterministic under a seed so every table and figure
//! the benches regenerate is exactly reproducible. The generators mirror the
//! paper's experimental setups: random step-up schedules with bounded
//! segments per core (Figs. 4–5), arbitrary periodic schedules (Fig. 3's
//! phase sweeps and the Theorem-2 validation), random platform
//! configurations for the Table-V timing grid, and heterogeneous floorplans
//! for the extension studies.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod tasks;

use mosc_power::ModeTable;
use mosc_sched::{CoreSchedule, Schedule, Segment};
use mosc_testutil::Rng64;
use mosc_thermal::{CoreGeom, Floorplan};

/// Creates the suite's RNG from a seed.
#[must_use]
pub fn rng(seed: u64) -> Rng64 {
    Rng64::seed_from_u64(seed)
}

/// Parameters for random schedule generation.
#[derive(Debug, Clone)]
pub struct ScheduleGen {
    /// Schedule period in seconds.
    pub period: f64,
    /// Maximum segments per core (at least 1).
    pub max_segments: usize,
    /// Voltage range to draw from.
    pub v_range: (f64, f64),
    /// When set, voltages snap to this table's levels instead of the
    /// continuous range.
    pub modes: Option<ModeTable>,
}

impl Default for ScheduleGen {
    fn default() -> Self {
        Self { period: 1.0, max_segments: 4, v_range: (0.6, 1.3), modes: None }
    }
}

impl ScheduleGen {
    fn draw_voltage(&self, rng: &mut Rng64) -> f64 {
        match &self.modes {
            Some(table) => {
                let levels = table.levels();
                levels[rng.gen_range(0..levels.len())]
            }
            None => rng.gen_range(self.v_range.0..=self.v_range.1),
        }
    }

    /// One random core timeline with ascending voltages (step-up).
    ///
    /// # Panics
    /// Panics when `max_segments == 0` or the period is not positive.
    #[must_use]
    pub fn stepup_core(&self, rng: &mut Rng64) -> CoreSchedule {
        assert!(self.max_segments >= 1 && self.period > 0.0);
        let n = rng.gen_range(1..=self.max_segments);
        let mut voltages: Vec<f64> = (0..n).map(|_| self.draw_voltage(rng)).collect();
        voltages.sort_by(|a, b| a.partial_cmp(b).expect("finite voltages"));
        voltages.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let n = voltages.len();
        let mut cuts: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(0.05..0.95)).collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
        let mut segs = Vec::with_capacity(n);
        let mut prev = 0.0;
        for (i, &v) in voltages.iter().enumerate() {
            let end = if i + 1 == n { 1.0 } else { cuts[i] };
            // Guard against zero-length segments from adjacent cuts.
            let len = ((end - prev) * self.period).max(1e-6 * self.period);
            segs.push(Segment::new(v, len));
            prev = end;
        }
        CoreSchedule::new(segs).expect("generated segments are valid")
    }

    /// One random core timeline with shuffled (arbitrary-order) voltages.
    #[must_use]
    pub fn arbitrary_core(&self, rng: &mut Rng64) -> CoreSchedule {
        let core = self.stepup_core(rng);
        let mut segs = core.segments().to_vec();
        for i in (1..segs.len()).rev() {
            let j = rng.gen_range(0..=i);
            segs.swap(i, j);
        }
        CoreSchedule::new(segs).expect("shuffle preserves validity")
    }

    /// A random multi-core step-up schedule.
    ///
    /// # Panics
    /// Panics when `n_cores == 0`.
    #[must_use]
    pub fn stepup_schedule(&self, rng: &mut Rng64, n_cores: usize) -> Schedule {
        assert!(n_cores > 0);
        // Normalize periods exactly: rebuild each core to sum precisely.
        let cores: Vec<CoreSchedule> = (0..n_cores).map(|_| self.stepup_core(rng)).collect();
        Schedule::new(normalize_periods(cores, self.period)).expect("generated cores are valid")
    }

    /// A random arbitrary periodic schedule.
    ///
    /// # Panics
    /// Panics when `n_cores == 0`.
    #[must_use]
    pub fn arbitrary_schedule(&self, rng: &mut Rng64, n_cores: usize) -> Schedule {
        assert!(n_cores > 0);
        let cores: Vec<CoreSchedule> = (0..n_cores).map(|_| self.arbitrary_core(rng)).collect();
        Schedule::new(normalize_periods(cores, self.period)).expect("generated cores are valid")
    }
}

/// Rescales each timeline so all periods match `period` exactly (floating
/// point cut arithmetic can drift by ULPs, which `Schedule::new` rejects).
fn normalize_periods(cores: Vec<CoreSchedule>, period: f64) -> Vec<CoreSchedule> {
    cores
        .into_iter()
        .map(|c| {
            let actual = c.period();
            let scale = period / actual;
            let segs: Vec<Segment> =
                c.segments().iter().map(|s| Segment::new(s.voltage, s.duration * scale)).collect();
            CoreSchedule::new(segs).expect("rescaling preserves validity")
        })
        .collect()
}

/// The paper's four platform configurations as `(rows, cols)` grids.
pub const PAPER_CONFIGS: [(usize, usize); 4] = [(1, 2), (1, 3), (2, 3), (3, 3)];

/// A heterogeneous single-layer floorplan: `n` tiles in a row with random
/// widths in `[w_min, w_max]` (all sharing the same height). Used by the
/// extension studies; the RC config's per-area/per-length normalization makes
/// it directly consumable.
///
/// # Panics
/// Panics on a degenerate width range or `n == 0`.
#[must_use]
pub fn hetero_row_floorplan(
    rng: &mut Rng64,
    n: usize,
    w_min: f64,
    w_max: f64,
    h: f64,
) -> Floorplan {
    assert!(n > 0 && w_min > 0.0 && w_max >= w_min && h > 0.0);
    let mut x = 0.0;
    let mut cores = Vec::with_capacity(n);
    for _ in 0..n {
        let w = rng.gen_range(w_min..=w_max);
        cores.push(CoreGeom { x, y: 0.0, w, h, layer: 0 });
        x += w;
    }
    Floorplan::new(cores).expect("generated tiles are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let gen = ScheduleGen::default();
        let a = gen.stepup_schedule(&mut rng(7), 3);
        let b = gen.stepup_schedule(&mut rng(7), 3);
        assert_eq!(a, b);
        let c = gen.stepup_schedule(&mut rng(8), 3);
        assert_ne!(a, c);
    }

    #[test]
    fn stepup_schedules_are_stepup() {
        let gen = ScheduleGen { max_segments: 5, ..ScheduleGen::default() };
        let mut r = rng(42);
        for _ in 0..50 {
            let s = gen.stepup_schedule(&mut r, 4);
            assert!(s.is_step_up());
            assert!((s.period() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn arbitrary_schedules_cover_non_stepup() {
        let gen = ScheduleGen { max_segments: 5, ..ScheduleGen::default() };
        let mut r = rng(43);
        let mut saw_non_stepup = false;
        for _ in 0..50 {
            let s = gen.arbitrary_schedule(&mut r, 4);
            assert!((s.period() - 1.0).abs() < 1e-9);
            saw_non_stepup |= !s.is_step_up();
        }
        assert!(saw_non_stepup, "shuffling should produce non-step-up schedules");
    }

    #[test]
    fn mode_snapping_uses_table_levels() {
        let table = ModeTable::table_iv(3);
        let gen = ScheduleGen { modes: Some(table.clone()), ..ScheduleGen::default() };
        let mut r = rng(44);
        let s = gen.stepup_schedule(&mut r, 3);
        for core in s.cores() {
            for seg in core.segments() {
                assert!(table.levels().iter().any(|&l| (l - seg.voltage).abs() < 1e-12));
            }
        }
    }

    #[test]
    fn voltages_within_range() {
        let gen = ScheduleGen { v_range: (0.7, 1.1), ..ScheduleGen::default() };
        let mut r = rng(45);
        for _ in 0..20 {
            let s = gen.stepup_schedule(&mut r, 2);
            for core in s.cores() {
                for seg in core.segments() {
                    assert!((0.7..=1.1).contains(&seg.voltage));
                }
            }
        }
    }

    #[test]
    fn hetero_floorplan_is_contiguous_row() {
        let mut r = rng(46);
        let f = hetero_row_floorplan(&mut r, 5, 2e-3, 6e-3, 4e-3);
        assert_eq!(f.n_cores(), 5);
        // Adjacent tiles share edges (4 adjacencies in a row of 5).
        assert_eq!(f.lateral_adjacency().len(), 4);
    }

    #[test]
    fn paper_configs_cover_the_four_sizes() {
        let sizes: Vec<usize> = PAPER_CONFIGS.iter().map(|&(r, c)| r * c).collect();
        assert_eq!(sizes, vec![2, 3, 6, 9]);
    }
}
