//! Periodic real-time task execution under a time-varying speed schedule.
//!
//! The paper's performance metric is raw throughput (eq. 5), inherited from
//! the real-time DVS line of work it builds on (Quan & Chaturvedi TII'10,
//! Huang DAC'11, Chaturvedi JSA'12 — refs [2], [25], [31]). This module makes
//! the connection concrete: given the per-core speed timeline a scheduling
//! algorithm produced, simulate a periodic task set under preemptive EDF
//! where the processor completes work at rate `v(t)`, and report deadline
//! behaviour. A core whose average speed exceeds the task set's utilization
//! should (and in these simulations does) meet implicit deadlines once the
//! oscillation period is small against the task periods — which is exactly
//! the regime AO's m-Oscillating schedules live in.

use mosc_sched::CoreSchedule;

/// One periodic task: releases a job every `period` seconds, each job needs
/// `wcet_work` units of work (seconds at speed 1.0) by its relative
/// `deadline`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Work per job, in speed-1 seconds.
    pub wcet_work: f64,
    /// Release period (s).
    pub period: f64,
    /// Relative deadline (s); implicit-deadline tasks use `period`.
    pub deadline: f64,
}

impl Task {
    /// Implicit-deadline constructor (`deadline = period`).
    #[must_use]
    pub fn implicit(wcet_work: f64, period: f64) -> Self {
        Self { wcet_work, period, deadline: period }
    }

    /// Utilization at speed 1 (`wcet / period`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet_work / self.period
    }
}

/// A partitioned (single-core) task set.
#[derive(Debug, Clone, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set; rejects non-positive parameters.
    ///
    /// # Panics
    /// Panics on degenerate task parameters (this is test/experiment
    /// tooling; garbage in is a programming error).
    #[must_use]
    pub fn new(tasks: Vec<Task>) -> Self {
        for t in &tasks {
            assert!(
                t.wcet_work > 0.0 && t.period > 0.0 && t.deadline > 0.0,
                "degenerate task {t:?}"
            );
        }
        Self { tasks }
    }

    /// The tasks.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total utilization at speed 1.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }
}

/// Outcome of an EDF simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct EdfStats {
    /// Jobs that completed by their deadline.
    pub completed: usize,
    /// Jobs that missed their deadline (counted once, at the miss).
    pub missed: usize,
    /// Largest lateness observed (s); 0 when nothing missed.
    pub max_lateness: f64,
    /// Work completed over the horizon (speed-1 seconds).
    pub work_done: f64,
    /// Number of preemptions.
    pub preemptions: usize,
}

#[derive(Debug, Clone)]
struct Job {
    abs_deadline: f64,
    remaining: f64,
    finished: Option<f64>,
}

/// Simulates preemptive EDF on one core whose speed follows `schedule`
/// (periodically repeated) for `horizon` seconds.
///
/// Event-driven: between consecutive events (job release, speed-segment
/// boundary, predicted completion) the running job's remaining work decreases
/// at the current speed. Jobs past their deadline keep running (lateness is
/// recorded); the simulation is deterministic.
///
/// # Panics
/// Panics on a non-positive horizon.
#[must_use]
pub fn simulate_edf(schedule: &CoreSchedule, tasks: &TaskSet, horizon: f64) -> EdfStats {
    assert!(horizon > 0.0, "horizon must be positive");
    let period = schedule.period();

    // Precompute speed-segment boundaries within one schedule period.
    let mut seg_bounds = Vec::with_capacity(schedule.segments().len());
    let mut acc = 0.0;
    for s in schedule.segments() {
        acc += s.duration;
        seg_bounds.push(acc);
    }

    // Minimum event step: guards against boundary "sticking" where float
    // rounding would otherwise produce zero-length iterations.
    let min_step = 1e-9 * period;
    let next_segment_boundary = |t: f64| -> f64 {
        let base = (t / period).floor() * period;
        let local = t - base;
        for &b in &seg_bounds {
            if b > local + min_step {
                return base + b;
            }
        }
        // `t` sits within min_step of the period wrap: the wrap itself is the
        // next boundary; the min-step clamp in the main loop guarantees we
        // cross it rather than sticking to it.
        base + period
    };

    let mut jobs: Vec<Job> = Vec::new();
    let mut stats =
        EdfStats { completed: 0, missed: 0, max_lateness: 0.0, work_done: 0.0, preemptions: 0 };
    let mut t = 0.0;
    let mut next_release: Vec<f64> = tasks.tasks().iter().map(|_| 0.0).collect();
    let mut last_running: Option<usize> = None;

    while t < horizon - 1e-12 {
        // Release due jobs.
        for (ti, task) in tasks.tasks().iter().enumerate() {
            while next_release[ti] <= t + 1e-12 {
                jobs.push(Job {
                    abs_deadline: next_release[ti] + task.deadline,
                    remaining: task.wcet_work,
                    finished: None,
                });
                next_release[ti] += task.period;
            }
        }

        // EDF pick: unfinished job with the earliest absolute deadline.
        let running = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.finished.is_none())
            .min_by(|(_, a), (_, b)| {
                a.abs_deadline.partial_cmp(&b.abs_deadline).expect("finite deadlines")
            })
            .map(|(i, _)| i);
        if let (Some(prev), Some(_)) = (last_running, running) {
            // Only count as preemption when the displaced job is unfinished.
            if last_running != running && jobs[prev].finished.is_none() {
                stats.preemptions += 1;
            }
        }
        last_running = running;

        // Next event horizon. The speed is probed a hair *inside* the
        // interval: accumulated event times drift by ULPs, and probing at
        // exactly `t` can read the segment just before a boundary instead of
        // the one the interval [t, t_next] actually lives in.
        let speed = schedule.voltage_at(t + min_step);
        let mut t_next = horizon
            .min(next_segment_boundary(t))
            .min(next_release.iter().copied().fold(f64::INFINITY, f64::min));
        if let Some(ri) = running {
            if speed > 0.0 {
                t_next = t_next.min(t + jobs[ri].remaining / speed);
            }
            // Deadline crossing is also an event (to record the miss at the
            // right instant).
            if jobs[ri].abs_deadline > t {
                t_next = t_next.min(jobs[ri].abs_deadline);
            }
        }
        let dt = (t_next - t).max(min_step);

        // Execute.
        if let Some(ri) = running {
            let done = speed * dt;
            let j = &mut jobs[ri];
            j.remaining -= done;
            stats.work_done += done;
            if j.remaining <= 1e-9 {
                j.finished = Some(t + dt);
                let lateness = (t + dt) - j.abs_deadline;
                if lateness > 1e-9 {
                    stats.missed += 1;
                    stats.max_lateness = stats.max_lateness.max(lateness);
                } else {
                    stats.completed += 1;
                }
            }
        }
        t += dt;
    }

    // Unfinished-but-late jobs at the horizon count as misses too.
    for j in &jobs {
        if j.finished.is_none() && j.abs_deadline < horizon {
            stats.missed += 1;
            stats.max_lateness = stats.max_lateness.max(horizon - j.abs_deadline);
        }
    }
    stats
}

/// Simulates one task set per core of a multi-core schedule (partitioned
/// scheduling: no migration). Returns per-core stats in core order.
///
/// # Panics
/// Panics when `task_sets.len()` differs from the schedule's core count or
/// the horizon is non-positive.
#[must_use]
pub fn simulate_partitioned(
    schedule: &mosc_sched::Schedule,
    task_sets: &[TaskSet],
    horizon: f64,
) -> Vec<EdfStats> {
    assert_eq!(task_sets.len(), schedule.n_cores(), "one task set per core is required");
    schedule
        .cores()
        .iter()
        .zip(task_sets)
        .map(|(core, tasks)| simulate_edf(core, tasks, horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::Segment;

    fn constant_core(v: f64, period: f64) -> CoreSchedule {
        CoreSchedule::constant(v, period).expect("valid")
    }

    #[test]
    fn underloaded_constant_speed_meets_all_deadlines() {
        let sched = constant_core(1.0, 0.1);
        let tasks = TaskSet::new(vec![Task::implicit(0.2, 1.0), Task::implicit(0.3, 2.0)]);
        assert!(tasks.utilization() < 1.0);
        let stats = simulate_edf(&sched, &tasks, 20.0);
        assert_eq!(stats.missed, 0, "{stats:?}");
        assert!(stats.completed >= 20 + 9);
        assert!(stats.max_lateness == 0.0);
    }

    #[test]
    fn overloaded_core_misses_deadlines() {
        let sched = constant_core(0.6, 0.1);
        // Utilization 0.8 > speed 0.6.
        let tasks = TaskSet::new(vec![Task::implicit(0.8, 1.0)]);
        let stats = simulate_edf(&sched, &tasks, 10.0);
        assert!(stats.missed > 0);
        assert!(stats.max_lateness > 0.0);
    }

    #[test]
    fn oscillating_speed_with_sufficient_average_meets_deadlines() {
        // Average speed 0.95 against utilization 0.8, oscillation period
        // (2 ms) tiny against the task period (1 s): EDF sails through.
        let sched = CoreSchedule::new(vec![Segment::new(0.6, 0.001), Segment::new(1.3, 0.001)])
            .expect("valid");
        let tasks = TaskSet::new(vec![Task::implicit(0.8, 1.0)]);
        let stats = simulate_edf(&sched, &tasks, 12.0);
        assert_eq!(stats.missed, 0, "{stats:?}");
    }

    #[test]
    fn slow_oscillation_against_tight_deadlines_can_miss() {
        // Same average speed, but the low block (0.5 s at 0.6) is long
        // against a task with a 0.25 s deadline and 0.2 work: jobs released
        // into the low block cannot finish in time.
        let sched =
            CoreSchedule::new(vec![Segment::new(0.6, 0.5), Segment::new(1.3, 0.5)]).expect("valid");
        let tasks = TaskSet::new(vec![Task { wcet_work: 0.2, period: 0.25, deadline: 0.25 }]);
        let stats = simulate_edf(&sched, &tasks, 10.0);
        assert!(stats.missed > 0, "slow oscillation must hurt tight deadlines: {stats:?}");
        // The m-Oscillating transform fixes it at the same average speed.
        let fast = CoreSchedule::new(vec![Segment::new(0.6, 0.005), Segment::new(1.3, 0.005)])
            .expect("valid");
        let stats_fast = simulate_edf(&fast, &tasks, 10.0);
        assert_eq!(stats_fast.missed, 0, "{stats_fast:?}");
    }

    #[test]
    fn work_done_matches_speed_integral_when_backlogged() {
        // A permanently backlogged core does work at exactly the schedule's
        // average speed.
        let sched = CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)])
            .expect("valid");
        let tasks = TaskSet::new(vec![Task::implicit(100.0, 1000.0)]);
        let horizon = 10.0;
        let stats = simulate_edf(&sched, &tasks, horizon);
        let avg_speed = sched.work() / sched.period();
        assert!(
            (stats.work_done - avg_speed * horizon).abs() < 1e-6,
            "work {} vs {}",
            stats.work_done,
            avg_speed * horizon
        );
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        // Two tasks released together; the tighter one must win the core.
        let sched = constant_core(1.0, 1.0);
        let tasks = TaskSet::new(vec![
            Task { wcet_work: 0.3, period: 10.0, deadline: 0.4 },
            Task { wcet_work: 0.3, period: 10.0, deadline: 5.0 },
        ]);
        let stats = simulate_edf(&sched, &tasks, 10.0);
        assert_eq!(stats.missed, 0, "{stats:?}");
    }

    #[test]
    fn utilization_accounting() {
        let t = Task::implicit(0.5, 2.0);
        assert!((t.utilization() - 0.25).abs() < 1e-12);
        let set = TaskSet::new(vec![t, Task::implicit(1.0, 4.0)]);
        assert!((set.utilization() - 0.5).abs() < 1e-12);
        assert!(TaskSet::default().tasks().is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate task")]
    fn rejects_degenerate_tasks() {
        let _ = TaskSet::new(vec![Task::implicit(0.0, 1.0)]);
    }

    #[test]
    fn partitioned_simulation_runs_each_core() {
        let schedule = mosc_sched::Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.9, 0.1], 0.01)
            .expect("schedule");
        // Core 0 (fast, avg 1.23) gets a heavy set; core 1 (avg 0.67) the
        // same set — only core 1 should struggle.
        let set = TaskSet::new(vec![Task::implicit(0.9, 1.0)]);
        let stats = simulate_partitioned(&schedule, &[set.clone(), set], 10.0);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].missed, 0, "{:?}", stats[0]);
        assert!(stats[1].missed > 0, "{:?}", stats[1]);
    }

    #[test]
    #[should_panic(expected = "one task set per core")]
    fn partitioned_requires_matching_lengths() {
        let schedule = mosc_sched::Schedule::constant(&[1.0, 1.0], 1.0).expect("schedule");
        let _ = simulate_partitioned(&schedule, &[TaskSet::default()], 1.0);
    }
}
