//! Design-space sweep: how the achievable throughput moves with the thermal
//! budget and the DVFS table richness, on a platform of your choosing.
//!
//! ```sh
//! cargo run --release --example design_space -- [rows] [cols]
//! cargo run --release --example design_space -- 3 3
//! ```

use mosc::algorithms::{continuous, solve};
use mosc::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let cols: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let opts = SolveOptions {
        base_period: 0.05,
        max_m: 256,
        m_patience: 6,
        t_unit_divisor: 100,
        ..SolveOptions::default()
    };

    println!("design-space sweep on a {rows}x{cols} grid ({} cores)\n", rows * cols);
    println!(
        "{:>8} {:>7} | {:>8} {:>8} {:>8} {:>8} | {:>6}",
        "T_max", "levels", "ideal", "LNS", "EXS", "AO", "AO m"
    );
    println!("{}", "-".repeat(70));

    for &t_max_c in &[50.0, 55.0, 60.0, 65.0] {
        for levels in [2usize, 3, 5] {
            let spec = PlatformSpec::paper(rows, cols, levels, t_max_c);
            let platform = Platform::build(&spec).expect("platform");
            let ideal = continuous::solve(&platform).expect("continuous");
            let lns_thr = solve(SolverKind::Lns, &platform, &opts)
                .map_or(f64::NAN, |r| r.solution.throughput);
            let exs_thr = solve(SolverKind::Exs, &platform, &opts)
                .map_or(f64::NAN, |r| r.solution.throughput);
            let (ao_thr, m) = solve(SolverKind::Ao, &platform, &opts)
                .map_or((f64::NAN, 0), |r| (r.solution.throughput, r.solution.m));
            println!(
                "{:>6.0} C {:>7} | {:>8.4} {:>8.4} {:>8.4} {:>8.4} | {:>6}",
                t_max_c, levels, ideal.throughput, lns_thr, exs_thr, ao_thr, m
            );
        }
    }
    println!(
        "\nreading guide: `ideal` is the continuous-DVFS upper bound; AO should sit between\n\
         EXS and ideal, with the gap to EXS widening as levels get scarcer and heat tighter."
    );
}
