//! Quickstart: schedule a 6-core chip under a 55 °C cap and compare the
//! paper's AO algorithm against the classic baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mosc::algorithms::solve;
use mosc::prelude::*;

fn main() {
    // The paper's 6-core platform: a 2x3 grid of 4x4 mm cores at 65 nm,
    // two DVFS levels {0.6 V, 1.3 V}, peak temperature capped at 55 °C.
    let spec = PlatformSpec::paper(2, 3, 2, 55.0);
    let platform = Platform::build(&spec).expect("platform assembles");
    println!(
        "platform: {} cores, {} voltage levels, T_max = {:.0} °C (ambient {:.0} °C)\n",
        platform.n_cores(),
        platform.modes().len(),
        platform.t_max_c(),
        platform.t_ambient_c()
    );

    // Every solver is one call on the unified dispatcher.
    let opts = SolveOptions::default();
    // Baseline 1: round the ideal continuous speeds down (LNS).
    let lns_sol = solve(SolverKind::Lns, &platform, &opts).expect("LNS").solution;
    // Baseline 2: exhaustive search over constant assignments (EXS).
    let exs_sol = solve(SolverKind::Exs, &platform, &opts).expect("EXS").solution;
    // The contribution: m-Oscillating frequency scheduling (AO).
    let ao_sol = solve(SolverKind::Ao, &platform, &opts).expect("AO").solution;

    for sol in [&lns_sol, &exs_sol, &ao_sol] {
        println!(
            "{:<4} throughput {:.4}  peak {:.2} °C  feasible {}  m = {}",
            sol.algorithm,
            sol.throughput,
            sol.peak_c(&platform),
            sol.feasible,
            sol.m
        );
    }
    println!(
        "\nAO improves {:.1}% over EXS and {:.1}% over LNS",
        (ao_sol.throughput / exs_sol.throughput - 1.0) * 100.0,
        (ao_sol.throughput / lns_sol.throughput - 1.0) * 100.0
    );

    // What does the winning schedule look like?
    println!("\nAO schedule (period {:.3} ms):", ao_sol.schedule.period() * 1e3);
    for (i, core) in ao_sol.schedule.cores().iter().enumerate() {
        let segs: Vec<String> = core
            .segments()
            .iter()
            .map(|s| format!("{:.2} V x {:.3} ms", s.voltage, s.duration * 1e3))
            .collect();
        println!("  core {i}: {}", segs.join("  ->  "));
    }
}
