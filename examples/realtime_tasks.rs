//! Real-time task execution on AO's thermal schedule: what the paper's
//! throughput metric means for deadlines.
//!
//! AO maximizes each core's *average* speed under the temperature cap; a
//! periodic task set is EDF-schedulable on a varying-speed core roughly when
//! its utilization fits under that average — provided the speed oscillation
//! is fast against the task periods, which is exactly what m-Oscillating
//! delivers. This example makes both halves visible.
//!
//! ```sh
//! cargo run --release --example realtime_tasks
//! ```

use mosc::algorithms::solve;
use mosc::prelude::*;
use mosc::workload::tasks::{simulate_edf, Task, TaskSet};

fn main() {
    let platform = Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).expect("platform");
    let opts = SolveOptions {
        base_period: 0.05,
        max_m: 256,
        m_patience: 6,
        t_unit_divisor: 100,
        ..SolveOptions::default()
    };
    let sol = solve(SolverKind::Ao, &platform, &opts).expect("AO").solution;
    println!(
        "AO schedule: chip throughput {:.4}, m = {}, compressed period {:.3} ms, peak {:.1} °C\n",
        sol.throughput,
        sol.m,
        sol.schedule.period() * 1e3,
        sol.peak_c(&platform)
    );

    let horizon = 30.0;
    for core in 0..platform.n_cores() {
        let timeline = sol.schedule.core(core);
        let avg_speed = timeline.work() / sol.schedule.period();

        // A task set sized to ~90 % of this core's average speed.
        let u_target = 0.9 * avg_speed;
        let tasks = TaskSet::new(vec![
            Task::implicit(u_target * 0.5 * 0.1, 0.1),
            Task::implicit(u_target * 0.3 * 0.25, 0.25),
            Task::implicit(u_target * 0.2 * 1.0, 1.0),
        ]);
        let stats = simulate_edf(timeline, &tasks, horizon);
        println!(
            "core {core}: avg speed {:.3}, task utilization {:.3} -> {} jobs done, {} missed{}",
            avg_speed,
            tasks.utilization(),
            stats.completed,
            stats.missed,
            if stats.missed == 0 { " (all deadlines met)" } else { "" }
        );

        // The same load WITHOUT oscillation (stuck at the low level) misses.
        let low = timeline.segments().iter().map(|s| s.voltage).fold(f64::INFINITY, f64::min);
        let constant_low = CoreSchedule::constant(low, sol.schedule.period()).expect("core");
        let stats_low = simulate_edf(&constant_low, &tasks, horizon);
        println!(
            "         at the {low:.1} V floor instead: {} done, {} missed (max lateness {:.2} s)",
            stats_low.completed, stats_low.missed, stats_low.max_lateness
        );
    }
    println!(
        "\nthe oscillating schedule sustains ~90%-of-average utilization with zero misses\n\
         because its period ({:.1} ms) is far below the task periods (100 ms+); the same\n\
         silicon pinned at the thermally-safe constant level drops jobs wholesale.",
        sol.schedule.period() * 1e3
    );
}
