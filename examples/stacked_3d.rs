//! 3-D stacked processor scheduling: the thermal scenario that motivates the
//! paper's introduction, scheduled end-to-end with AO.
//!
//! ```sh
//! cargo run --release --example stacked_3d
//! ```

use mosc::algorithms::solve;
use mosc::prelude::*;

fn main() {
    let opts = SolveOptions {
        base_period: 0.05,
        max_m: 256,
        m_patience: 6,
        t_unit_divisor: 100,
        ..SolveOptions::default()
    };

    for layers in [1usize, 2, 3] {
        // Keep total core count at 6: 1x(2x3), 2x(1x3), 3x(1x2).
        let (rows, cols) = match layers {
            1 => (2, 3),
            2 => (1, 3),
            _ => (1, 2),
        };
        let spec = PlatformSpec { layers, ..PlatformSpec::paper(rows, cols, 3, 60.0) };
        let platform = Platform::build(&spec).expect("platform");
        match solve(SolverKind::Ao, &platform, &opts).map(|r| r.solution) {
            Ok(sol) => {
                let per_layer: Vec<String> = (0..layers)
                    .map(|l| {
                        let per = rows * cols;
                        let speeds: Vec<f64> = (l * per..(l + 1) * per)
                            .map(|c| sol.schedule.core(c).work() / sol.schedule.period())
                            .collect();
                        format!(
                            "layer {l}: {:.3}",
                            speeds.iter().sum::<f64>() / speeds.len() as f64
                        )
                    })
                    .collect();
                println!(
                    "{layers}-layer x {rows}x{cols}: throughput {:.4} (peak {:.1} °C, m = {})   mean speed {}",
                    sol.throughput,
                    sol.peak_c(&platform),
                    sol.m,
                    per_layer.join(", ")
                );
            }
            Err(e) => println!("{layers}-layer x {rows}x{cols}: infeasible — {e}"),
        }
    }
    println!(
        "\nthe same six cores lose sustained throughput as they stack: the upper layers'\n\
         heat must cross the lower dies to reach the sink, so AO throttles them hardest —\n\
         exactly the 3-D thermal crisis the paper's introduction describes."
    );
}
