//! Thermal-model exploration: build a custom floorplan, attach the RC
//! network, and watch temperatures evolve under a hand-written DVFS
//! schedule — the substrate layer of the library used directly.
//!
//! ```sh
//! cargo run --release --example thermal_explorer
//! ```

use mosc::prelude::*;
use mosc::sched::eval::{transient_trace, SteadyState};
use mosc::thermal::sim;

fn main() {
    // A heterogeneous 4-core row: two big 5x4 mm cores flanked by two
    // little 3x4 mm ones (big.LITTLE style).
    let mm = 1e-3;
    let tiles = vec![
        mosc::thermal::CoreGeom { x: 0.0, y: 0.0, w: 3.0 * mm, h: 4.0 * mm, layer: 0 },
        mosc::thermal::CoreGeom { x: 3.0 * mm, y: 0.0, w: 5.0 * mm, h: 4.0 * mm, layer: 0 },
        mosc::thermal::CoreGeom { x: 8.0 * mm, y: 0.0, w: 5.0 * mm, h: 4.0 * mm, layer: 0 },
        mosc::thermal::CoreGeom { x: 13.0 * mm, y: 0.0, w: 3.0 * mm, h: 4.0 * mm, layer: 0 },
    ];
    let floorplan = Floorplan::new(tiles).expect("floorplan");
    let network = RcNetwork::build(&floorplan, &RcConfig::default()).expect("network");
    let params = Params65nm::params();
    let model = ThermalModel::new(network, params.power.beta).expect("model");
    println!(
        "custom floorplan: {} cores, {} thermal nodes, slowest eigenmode {:.2} s",
        model.n_cores(),
        model.n_nodes(),
        -1.0 / model.eigenvalues().max()
    );

    // A bursty schedule: the big cores alternate heavy/idle, the little
    // cores run steadily.
    let schedule = Schedule::new(vec![
        CoreSchedule::constant(0.8, 2.0).expect("core 0"),
        CoreSchedule::new(vec![Segment::new(0.6, 1.0), Segment::new(1.3, 1.0)]).expect("core 1"),
        CoreSchedule::new(vec![Segment::new(1.3, 1.0), Segment::new(0.6, 1.0)]).expect("core 2"),
        CoreSchedule::constant(0.8, 2.0).expect("core 3"),
    ])
    .expect("schedule");

    // Warm up from ambient and print the trajectory.
    let t0 = mosc::linalg::Vector::zeros(model.n_nodes());
    let trace =
        transient_trace(&model, &params.power, &schedule, &t0, 30, 8).expect("transient trace");
    println!("\nwarm-up from ambient ({} samples):", trace.len());
    for &at in &[0usize, 40, 120, trace.len() - 1] {
        let t = &trace.temps()[at.min(trace.len() - 1)];
        let cores: Vec<String> =
            (0..4).map(|c| format!("{:.1}", params.to_celsius(t[c]))).collect();
        println!(
            "  t = {:>6.1} s   cores [{}] °C",
            trace.times()[at.min(trace.len() - 1)],
            cores.join(", ")
        );
    }

    // The periodic stable status and its peak.
    let ss = SteadyState::compute(&model, &params.power, &schedule).expect("steady state");
    let peak = ss.peak_sampled(&model, 1000).expect("peak");
    println!(
        "\nstable status: peak {:.2} °C on core {} at t = {:.2} s within the period",
        params.to_celsius(peak.temp),
        peak.core,
        peak.time
    );

    // Cross-check the analytic propagator against brute-force RK4.
    let segments: Vec<(Vec<f64>, f64)> = schedule
        .state_intervals()
        .into_iter()
        .map(|(v, l)| (params.power.psi_profile(&v), l))
        .collect();
    let (rk4_end, _) = sim::integrate_piecewise(&model, ss.t_start(), &segments, 1e-4, 10_000)
        .expect("rk4 reference");
    let analytic_end = ss.at_interval_ends().last().expect("intervals");
    println!(
        "analytic vs RK4 after one period: max |ΔT| = {:.2e} K (exactness of eq. 3)",
        rk4_end.max_abs_diff(analytic_end)
    );
}
