//! `mosc-cli` — command-line front end for the scheduler.
//!
//! ```text
//! mosc-cli solve --algo ao --rows 2 --cols 3 --levels 2 --tmax 55 [--out schedule.txt]
//! mosc-cli peak  --rows 2 --cols 3 --tmax 55 --schedule schedule.txt
//! mosc-cli compare --rows 3 --cols 3 --levels 2 --tmax 55
//! mosc-cli trace --rows 1 --cols 3 --tmax 65 --schedule schedule.txt --periods 20 [--out trace.csv]
//! mosc-cli analyze spec.json
//! mosc-cli profile spec.json [--obs=json]
//! ```
//!
//! Platform flags (shared): `--rows`, `--cols` (grid), `--layers` (3-D
//! stack), `--levels` (Table-IV set, 2–5), `--tmax` (°C), `--cooler`
//! (`default` | `budget` | `responsive`).
//!
//! The global `--obs[=pretty|json]` flag arms the `mosc-obs` recorder and
//! appends a telemetry report to any subcommand's output: a span tree with
//! self/total times, the metric table, and the solver decision log
//! (`pretty`, the default), or JSONL suitable for `BENCH_obs.json`-style
//! ingestion and the `M05x` telemetry lints (`json`).
//!
//! `analyze` runs the `mosc-analyze` lints over a JSON spec describing a
//! platform and (optionally) a schedule and a claimed solution, printing
//! rustc-style `error[M0xx]` / `warning[M0xx]` diagnostics. The exit code
//! is nonzero when any error-severity finding is present. See
//! `DESIGN.md` §7 for the full code table and `crates/analyze` for the
//! spec format.
//!
//! `profile` builds the platform of a spec file and runs every solver on
//! it — LNS, EXS, EXS-BnB, AO, PCO and the reactive governor — resetting
//! the recorder between solvers, so each section's telemetry (and the
//! closing comparison table) is attributable to one algorithm. A closing
//! period-map scaling section evaluates one two-mode schedule at
//! oscillation factors m ∈ {1, 64, 256} through both the modal kernel and
//! the interval-by-interval dense reference: the kernel's dense-op count
//! must stay flat in m while the reference's grows linearly, which the
//! `ci.sh` smoke asserts from the `{"type":"periodmap",...}` JSON lines.

use mosc::algorithms::ao::{self, AoOptions};
use mosc::algorithms::pco::{self, PcoOptions};
use mosc::algorithms::reactive::{self, GovernorOptions};
use mosc::algorithms::{exs, exs_bnb, lns};
use mosc::prelude::*;
use mosc::sched::eval::transient_trace;
use mosc::sched::text;
use std::process::ExitCode;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("cannot parse {name} value '{s}'")),
        }
    }

    /// The `--out` target, or an error when the flag is present without a
    /// usable value (previously that case fell through to stdout silently).
    fn out_path(&self) -> Result<Option<&str>, String> {
        match self.0.iter().position(|a| a == "--out") {
            None => Ok(None),
            Some(i) => match self.0.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v)),
                _ => Err("--out needs a file path".into()),
            },
        }
    }
}

/// What the `--obs` flag asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObsMode {
    Off,
    Pretty,
    Json,
}

fn parse_obs(argv: &[String]) -> Result<ObsMode, String> {
    for a in argv {
        match a.as_str() {
            "--obs" | "--obs=pretty" => return Ok(ObsMode::Pretty),
            "--obs=json" => return Ok(ObsMode::Json),
            other => {
                if let Some(rest) = other.strip_prefix("--obs=") {
                    return Err(format!("unknown --obs format '{rest}' (expected pretty or json)"));
                }
            }
        }
    }
    Ok(ObsMode::Off)
}

/// Prints the recorder's current snapshot in the requested format.
fn emit_obs(mode: ObsMode) {
    let telemetry = mosc::obs::snapshot();
    match mode {
        ObsMode::Off => {}
        ObsMode::Pretty => {
            println!();
            print!("{}", telemetry.render_pretty());
        }
        ObsMode::Json => print!("{}", telemetry.to_jsonl()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mosc-cli solve   --algo <lns|exs|exs-bnb|ao|pco> [platform flags] [--out FILE]
  mosc-cli peak    --schedule FILE [platform flags]
  mosc-cli compare [platform flags]
  mosc-cli trace   --schedule FILE [--periods N] [--out FILE] [platform flags]
  mosc-cli analyze SPEC.json|TELEMETRY.jsonl
  mosc-cli profile SPEC.json
global: --obs[=pretty|json]  append a mosc-obs telemetry report to the output
platform flags: --rows R --cols C [--layers L] [--levels 2..5] --tmax C [--cooler default|budget|responsive]";

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return Err("missing subcommand".into());
    };
    let obs_mode = parse_obs(&argv)?;
    if obs_mode != ObsMode::Off {
        mosc::obs::enable();
    }
    let args = Args(argv);

    // `analyze` builds its platform from the spec file, not the flags;
    // `profile` does too and owns its own telemetry life cycle.
    if cmd == "analyze" {
        return analyze(&args);
    }
    if cmd == "profile" {
        return profile(&args, obs_mode);
    }

    let platform = build_platform(&args)?;
    let code = match cmd.as_str() {
        "solve" => solve(&args, &platform),
        "peak" => peak(&args, &platform),
        "compare" => {
            compare(&platform);
            Ok(())
        }
        "trace" => trace(&args, &platform),
        other => Err(format!("unknown subcommand '{other}'")),
    }
    .map(|()| ExitCode::SUCCESS)?;
    emit_obs(obs_mode);
    Ok(code)
}

/// One profile entry: solver name plus its deferred run.
type SolverRun<'a> = (&'a str, Box<dyn Fn() -> Result<Solution, String> + 'a>);

/// One summary row: name, wall seconds, `expm.calls`, `peak_eval.calls`, outcome.
type ProfileRow<'a> = (&'a str, f64, u64, u64, Result<Solution, String>);

/// Runs every solver on the spec's platform, one recorder window each, and
/// closes with a comparison table (pretty) or per-solver JSONL blocks.
fn profile(args: &Args, mode: ObsMode) -> Result<ExitCode, String> {
    let path =
        args.0.get(1).filter(|a| !a.starts_with("--")).ok_or("profile needs a SPEC.json path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let platform = mosc::analyze::platform_from_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    // Profiling is pointless without the recorder; default to pretty.
    let json = mode == ObsMode::Json;
    mosc::obs::enable();

    // A short governor horizon: the propagator cache makes the per-step cost
    // trivial, but the default 300 s horizon is still 60k steps.
    let gov = GovernorOptions {
        control_period: 0.01,
        horizon: 30.0,
        warmup: 15.0,
        ..GovernorOptions::default()
    };
    let solvers: Vec<SolverRun<'_>> = vec![
        ("LNS", Box::new(|| lns::solve(&platform).map_err(|e| e.to_string()))),
        ("EXS", Box::new(|| exs::solve(&platform).map_err(|e| e.to_string()))),
        (
            "EXS-BnB",
            Box::new(|| exs_bnb::solve(&platform).map(|(s, _)| s).map_err(|e| e.to_string())),
        ),
        (
            "AO",
            Box::new(|| {
                ao::solve_with(&platform, &AoOptions::default()).map_err(|e| e.to_string())
            }),
        ),
        (
            "PCO",
            Box::new(|| {
                pco::solve_with(&platform, &PcoOptions::default()).map_err(|e| e.to_string())
            }),
        ),
        (
            "Governor",
            Box::new(|| {
                reactive::simulate(&platform, &gov)
                    .and_then(|r| r.as_solution(&platform))
                    .map_err(|e| e.to_string())
            }),
        ),
    ];

    let mut summary: Vec<ProfileRow<'_>> = Vec::new();
    for (name, solve) in &solvers {
        mosc::obs::reset();
        let start = std::time::Instant::now();
        let result = solve();
        let wall = start.elapsed().as_secs_f64();
        let telemetry = mosc::obs::snapshot();
        let expm = telemetry.counter("expm.calls").unwrap_or(0);
        let peaks = telemetry.counter("peak_eval.calls").unwrap_or(0);
        if json {
            match &result {
                Ok(s) => println!(
                    "{{\"type\":\"profile\",\"solver\":{},\"wall_s\":{wall:?},\
                     \"throughput\":{:?},\"peak_c\":{:?},\"feasible\":{}}}",
                    json_quote(name),
                    s.throughput,
                    s.peak_c(&platform),
                    s.feasible
                ),
                Err(e) => println!(
                    "{{\"type\":\"profile\",\"solver\":{},\"wall_s\":{wall:?},\"error\":{}}}",
                    json_quote(name),
                    json_quote(e)
                ),
            }
            print!("{}", telemetry.to_jsonl());
        } else {
            println!("=== {name} ===");
            match &result {
                Ok(s) => println!(
                    "throughput {:.4}, peak {:.2} C, feasible {}, m = {}, wall {:.3} s",
                    s.throughput,
                    s.peak_c(&platform),
                    s.feasible,
                    s.m,
                    wall
                ),
                Err(e) => println!("failed: {e} (wall {wall:.3} s)"),
            }
            print!("{}", telemetry.render_pretty());
            println!();
        }
        summary.push((name, wall, expm, peaks, result));
    }

    if !json {
        println!(
            "{:<9} {:>9} {:>11} {:>15} {:>10}",
            "solver", "wall (s)", "expm.calls", "peak_eval.calls", "throughput"
        );
        for (name, wall, expm, peaks, result) in &summary {
            match result {
                Ok(s) => {
                    println!("{name:<9} {wall:>9.3} {expm:>11} {peaks:>15} {:>10.4}", s.throughput);
                }
                Err(_) => println!("{name:<9} {wall:>9.3} {expm:>11} {peaks:>15} {:>10}", "failed"),
            }
        }
        println!();
    }
    periodmap_section(&platform, json)?;
    Ok(ExitCode::SUCCESS)
}

/// The dense-op counters of the current recorder window: the modal kernel's
/// basis changes plus any full dense products.
fn dense_ops(t: &mosc::obs::Telemetry) -> u64 {
    t.counter("period_map.matmuls").unwrap_or(0) + t.counter("linalg.matmuls").unwrap_or(0)
}

/// The period-map scaling section of `profile`: one two-mode schedule
/// evaluated at m ∈ {1, 64, 256} through the modal kernel
/// (`SteadyState::compute`) and the interval-by-interval dense reference
/// (`compute_dense`), with each side's dense-op and `expm.calls` counters.
/// Both sides must agree on the steady state; the kernel's dense work must
/// not grow with m.
fn periodmap_section(platform: &Platform, json: bool) -> Result<ExitCode, String> {
    let n = platform.n_cores();
    let levels = platform.modes().levels();
    let (v_low, v_high) = (levels[0], *levels.last().expect("mode sets are non-empty"));
    let base = Schedule::two_mode(&vec![v_low; n], &vec![v_high; n], &vec![0.5; n], 0.05)
        .map_err(|e| format!("period-map schedule: {e}"))?;
    if !json {
        println!("=== period-map scaling (two-mode schedule, oscillated) ===");
        println!(
            "{:>5} {:>9} {:>10} {:>10} {:>10} {:>11} {:>11} {:>10}",
            "m",
            "fast ops",
            "fast expm",
            "fast (s)",
            "dense ops",
            "dense expm",
            "dense (s)",
            "max |diff|"
        );
    }
    for &m in &[1usize, 64, 256] {
        let s = base.oscillated(m);
        mosc::obs::reset();
        let start = std::time::Instant::now();
        let fast =
            mosc::sched::eval::SteadyState::compute(platform.thermal(), platform.power(), &s)
                .map_err(|e| format!("period-map fast path (m = {m}): {e}"))?;
        let fast_wall = start.elapsed().as_secs_f64();
        let t = mosc::obs::snapshot();
        let (fast_ops, fast_expm) = (dense_ops(&t), t.counter("expm.calls").unwrap_or(0));

        mosc::obs::reset();
        let start = std::time::Instant::now();
        let (dense_start, _) =
            mosc::sched::eval::compute_dense(platform.thermal(), platform.power(), &s)
                .map_err(|e| format!("period-map dense reference (m = {m}): {e}"))?;
        let dense_wall = start.elapsed().as_secs_f64();
        let t = mosc::obs::snapshot();
        let (dense_ops, dense_expm) = (dense_ops(&t), t.counter("expm.calls").unwrap_or(0));

        let diff = fast.t_start().max_abs_diff(&dense_start);
        if diff > 1e-8 {
            return Err(format!(
                "period-map kernel diverges from the dense reference at m = {m}: {diff}"
            ));
        }
        if json {
            println!(
                "{{\"type\":\"periodmap\",\"m\":{m},\"fast_ops\":{fast_ops},\
                 \"fast_expm\":{fast_expm},\"fast_wall_s\":{fast_wall:?},\
                 \"dense_ops\":{dense_ops},\"dense_expm\":{dense_expm},\
                 \"dense_wall_s\":{dense_wall:?},\"max_abs_diff\":{diff:?}}}"
            );
        } else {
            println!(
                "{m:>5} {fast_ops:>9} {fast_expm:>10} {fast_wall:>10.6} \
                 {dense_ops:>10} {dense_expm:>11} {dense_wall:>11.6} {diff:>10.2e}"
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Minimal JSON string quoting for the profile header lines.
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn analyze(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .0
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("analyze needs a SPEC.json or TELEMETRY.jsonl path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // `.jsonl` files are mosc-obs telemetry streams (M05x lints); anything
    // else is a platform/schedule/solution spec.
    let report = if path.ends_with(".jsonl") {
        mosc::analyze::analyze_telemetry(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        mosc::analyze::analyze_spec(&text).map_err(|e| format!("{path}: {e}"))?
    };
    print!("{}", report.render());
    if report.has_errors() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn build_platform(args: &Args) -> Result<Platform, String> {
    let rows: usize = args.parse_or("--rows", 2)?;
    let cols: usize = args.parse_or("--cols", 3)?;
    let layers: usize = args.parse_or("--layers", 1)?;
    let levels: usize = args.parse_or("--levels", 2)?;
    let tmax: f64 = args.parse_or("--tmax", 55.0)?;
    if !(2..=5).contains(&levels) {
        return Err("--levels must be 2..=5 (Table IV sets)".into());
    }
    let mut spec = PlatformSpec::paper(rows, cols, levels, tmax);
    spec.layers = layers;
    spec.rc = match args.flag("--cooler").unwrap_or("default") {
        "default" => RcConfig::default(),
        "budget" => RcConfig::budget_cooler(),
        "responsive" => RcConfig::responsive_package(),
        other => return Err(format!("unknown cooler '{other}'")),
    };
    Platform::build(&spec).map_err(|e| format!("platform build failed: {e}"))
}

fn solve(args: &Args, platform: &Platform) -> Result<(), String> {
    let algo = args.flag("--algo").unwrap_or("ao");
    let sol = match algo {
        "lns" => lns::solve(platform),
        "exs" => exs::solve(platform),
        "exs-bnb" => exs_bnb::solve(platform).map(|(s, stats)| {
            eprintln!(
                "bnb: visited {} nodes ({} thermal prunes, {} throughput prunes)",
                stats.visited, stats.thermal_prunes, stats.throughput_prunes
            );
            s
        }),
        "ao" => ao::solve_with(platform, &AoOptions::default()),
        "pco" => pco::solve_with(platform, &PcoOptions::default()),
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    .map_err(|e| format!("{algo} failed: {e}"))?;

    println!(
        "{}: throughput {:.4}, peak {:.2} C, feasible {}, m = {}",
        sol.algorithm,
        sol.throughput,
        sol.peak_c(platform),
        sol.feasible,
        sol.m
    );
    let rendered = text::to_text(&sol.schedule);
    match args.out_path()? {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write schedule to '{path}': {e}"))?;
            println!("schedule written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn load_schedule(args: &Args, platform: &Platform) -> Result<Schedule, String> {
    let path = args.flag("--schedule").ok_or("missing --schedule FILE")?;
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = text::from_text(&content).map_err(|e| format!("parse {path}: {e}"))?;
    if schedule.n_cores() != platform.n_cores() {
        return Err(format!(
            "schedule has {} cores but the platform has {}",
            schedule.n_cores(),
            platform.n_cores()
        ));
    }
    Ok(schedule)
}

fn peak(args: &Args, platform: &Platform) -> Result<(), String> {
    let schedule = load_schedule(args, platform)?;
    let report = platform.peak(&schedule).map_err(|e| format!("evaluation failed: {e}"))?;
    println!(
        "peak {:.3} C on core {} at t = {:.6} s ({}); T_max = {:.1} C -> {}",
        platform.to_celsius(report.temp),
        report.core,
        report.time,
        if report.exact { "exact, Theorem 1" } else { "sampled" },
        platform.t_max_c(),
        if report.temp <= platform.t_max() + 1e-9 { "SAFE" } else { "VIOLATION" }
    );
    println!("throughput {:.4}", schedule.throughput_with_overhead(platform.overhead()));
    Ok(())
}

fn compare(platform: &Platform) {
    println!("{:<8} {:>10} {:>10} {:>9} {:>5}", "algo", "throughput", "peak (C)", "feasible", "m");
    for (name, result) in [
        ("LNS", lns::solve(platform)),
        ("EXS", exs::solve(platform)),
        ("AO", ao::solve_with(platform, &AoOptions::default())),
        ("PCO", pco::solve_with(platform, &PcoOptions::default())),
    ] {
        match result {
            Ok(s) => println!(
                "{name:<8} {:>10.4} {:>10.2} {:>9} {:>5}",
                s.throughput,
                s.peak_c(platform),
                s.feasible,
                s.m
            ),
            Err(e) => println!("{name:<8} failed: {e}"),
        }
    }
}

fn trace(args: &Args, platform: &Platform) -> Result<(), String> {
    let schedule = load_schedule(args, platform)?;
    let periods: usize = args.parse_or("--periods", 10)?;
    let t0 = mosc::linalg::Vector::zeros(platform.thermal().n_nodes());
    let tr = transient_trace(platform.thermal(), platform.power(), &schedule, &t0, periods, 50)
        .map_err(|e| format!("trace failed: {e}"))?;
    let csv = tr.to_csv(platform.t_ambient_c());
    match args.out_path()? {
        Some(path) => {
            std::fs::write(path, &csv)
                .map_err(|e| format!("cannot write trace to '{path}': {e}"))?;
            println!("trace ({} samples) written to {path}", tr.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}
