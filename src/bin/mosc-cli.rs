//! `mosc-cli` — command-line front end for the scheduler.
//!
//! ```text
//! mosc-cli solve --algo ao --rows 2 --cols 3 --levels 2 --tmax 55 [--out schedule.txt]
//! mosc-cli peak  --rows 2 --cols 3 --tmax 55 --schedule schedule.txt
//! mosc-cli compare --rows 3 --cols 3 --levels 2 --tmax 55
//! mosc-cli trace --rows 1 --cols 3 --tmax 65 --schedule schedule.txt --periods 20 [--out trace.csv]
//! mosc-cli analyze spec.json
//! ```
//!
//! Platform flags (shared): `--rows`, `--cols` (grid), `--layers` (3-D
//! stack), `--levels` (Table-IV set, 2–5), `--tmax` (°C), `--cooler`
//! (`default` | `budget` | `responsive`).
//!
//! `analyze` runs the `mosc-analyze` lints over a JSON spec describing a
//! platform and (optionally) a schedule and a claimed solution, printing
//! rustc-style `error[M0xx]` / `warning[M0xx]` diagnostics. The exit code
//! is nonzero when any error-severity finding is present. See
//! `DESIGN.md` §7 for the full code table and `crates/analyze` for the
//! spec format.

use mosc::algorithms::ao::{self, AoOptions};
use mosc::algorithms::pco::{self, PcoOptions};
use mosc::algorithms::{exs, exs_bnb, lns};
use mosc::prelude::*;
use mosc::sched::eval::transient_trace;
use mosc::sched::text;
use std::process::ExitCode;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("cannot parse {name} value '{s}'")),
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mosc-cli solve   --algo <lns|exs|exs-bnb|ao|pco> [platform flags] [--out FILE]
  mosc-cli peak    --schedule FILE [platform flags]
  mosc-cli compare [platform flags]
  mosc-cli trace   --schedule FILE [--periods N] [--out FILE] [platform flags]
  mosc-cli analyze SPEC.json
platform flags: --rows R --cols C [--layers L] [--levels 2..5] --tmax C [--cooler default|budget|responsive]";

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return Err("missing subcommand".into());
    };
    let args = Args(argv);

    // `analyze` builds its platform from the spec file, not the flags.
    if cmd == "analyze" {
        return analyze(&args);
    }

    let platform = build_platform(&args)?;
    match cmd.as_str() {
        "solve" => solve(&args, &platform),
        "peak" => peak(&args, &platform),
        "compare" => {
            compare(&platform);
            Ok(())
        }
        "trace" => trace(&args, &platform),
        other => Err(format!("unknown subcommand '{other}'")),
    }
    .map(|()| ExitCode::SUCCESS)
}

fn analyze(args: &Args) -> Result<ExitCode, String> {
    let path =
        args.0.get(1).filter(|a| !a.starts_with("--")).ok_or("analyze needs a SPEC.json path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = mosc::analyze::analyze_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", report.render());
    if report.has_errors() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn build_platform(args: &Args) -> Result<Platform, String> {
    let rows: usize = args.parse_or("--rows", 2)?;
    let cols: usize = args.parse_or("--cols", 3)?;
    let layers: usize = args.parse_or("--layers", 1)?;
    let levels: usize = args.parse_or("--levels", 2)?;
    let tmax: f64 = args.parse_or("--tmax", 55.0)?;
    if !(2..=5).contains(&levels) {
        return Err("--levels must be 2..=5 (Table IV sets)".into());
    }
    let mut spec = PlatformSpec::paper(rows, cols, levels, tmax);
    spec.layers = layers;
    spec.rc = match args.flag("--cooler").unwrap_or("default") {
        "default" => RcConfig::default(),
        "budget" => RcConfig::budget_cooler(),
        "responsive" => RcConfig::responsive_package(),
        other => return Err(format!("unknown cooler '{other}'")),
    };
    Platform::build(&spec).map_err(|e| format!("platform build failed: {e}"))
}

fn solve(args: &Args, platform: &Platform) -> Result<(), String> {
    let algo = args.flag("--algo").unwrap_or("ao");
    let sol = match algo {
        "lns" => lns::solve(platform),
        "exs" => exs::solve(platform),
        "exs-bnb" => exs_bnb::solve(platform).map(|(s, stats)| {
            eprintln!(
                "bnb: visited {} nodes ({} thermal prunes, {} throughput prunes)",
                stats.visited, stats.thermal_prunes, stats.throughput_prunes
            );
            s
        }),
        "ao" => ao::solve_with(platform, &AoOptions::default()),
        "pco" => pco::solve_with(platform, &PcoOptions::default()),
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    .map_err(|e| format!("{algo} failed: {e}"))?;

    println!(
        "{}: throughput {:.4}, peak {:.2} C, feasible {}, m = {}",
        sol.algorithm,
        sol.throughput,
        sol.peak_c(platform),
        sol.feasible,
        sol.m
    );
    let rendered = text::to_text(&sol.schedule);
    match args.flag("--out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("schedule written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn load_schedule(args: &Args, platform: &Platform) -> Result<Schedule, String> {
    let path = args.flag("--schedule").ok_or("missing --schedule FILE")?;
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = text::from_text(&content).map_err(|e| format!("parse {path}: {e}"))?;
    if schedule.n_cores() != platform.n_cores() {
        return Err(format!(
            "schedule has {} cores but the platform has {}",
            schedule.n_cores(),
            platform.n_cores()
        ));
    }
    Ok(schedule)
}

fn peak(args: &Args, platform: &Platform) -> Result<(), String> {
    let schedule = load_schedule(args, platform)?;
    let report = platform.peak(&schedule).map_err(|e| format!("evaluation failed: {e}"))?;
    println!(
        "peak {:.3} C on core {} at t = {:.6} s ({}); T_max = {:.1} C -> {}",
        platform.to_celsius(report.temp),
        report.core,
        report.time,
        if report.exact { "exact, Theorem 1" } else { "sampled" },
        platform.t_max_c(),
        if report.temp <= platform.t_max() + 1e-9 { "SAFE" } else { "VIOLATION" }
    );
    println!("throughput {:.4}", schedule.throughput_with_overhead(platform.overhead()));
    Ok(())
}

fn compare(platform: &Platform) {
    println!("{:<8} {:>10} {:>10} {:>9} {:>5}", "algo", "throughput", "peak (C)", "feasible", "m");
    for (name, result) in [
        ("LNS", lns::solve(platform)),
        ("EXS", exs::solve(platform)),
        ("AO", ao::solve_with(platform, &AoOptions::default())),
        ("PCO", pco::solve_with(platform, &PcoOptions::default())),
    ] {
        match result {
            Ok(s) => println!(
                "{name:<8} {:>10.4} {:>10.2} {:>9} {:>5}",
                s.throughput,
                s.peak_c(platform),
                s.feasible,
                s.m
            ),
            Err(e) => println!("{name:<8} failed: {e}"),
        }
    }
}

fn trace(args: &Args, platform: &Platform) -> Result<(), String> {
    let schedule = load_schedule(args, platform)?;
    let periods: usize = args.parse_or("--periods", 10)?;
    let t0 = mosc::linalg::Vector::zeros(platform.thermal().n_nodes());
    let tr = transient_trace(platform.thermal(), platform.power(), &schedule, &t0, periods, 50)
        .map_err(|e| format!("trace failed: {e}"))?;
    let csv = tr.to_csv(platform.t_ambient_c());
    match args.flag("--out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("trace ({} samples) written to {path}", tr.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}
