//! `mosc-cli` — command-line front end for the scheduler.
//!
//! ```text
//! mosc-cli solve --algo ao --rows 2 --cols 3 --levels 2 --tmax 55 [--out schedule.txt]
//! mosc-cli peak  --rows 2 --cols 3 --tmax 55 --schedule schedule.txt
//! mosc-cli compare --rows 3 --cols 3 --levels 2 --tmax 55
//! mosc-cli trace --rows 1 --cols 3 --tmax 65 --schedule schedule.txt --periods 20 [--out trace.csv]
//! mosc-cli trace access.jsonl flight.jsonl [--trace-id HEX] [--format text|json]
//! mosc-cli analyze spec.json
//! mosc-cli profile spec.json [--obs=json]
//! mosc-cli serve --addr 127.0.0.1:7070 [--access-log FILE] [--slow-ms MS]
//! mosc-cli client --addr 127.0.0.1:7070 [--batch] < requests.jsonl
//! mosc-cli stats --addr 127.0.0.1:7070 [--watch] [--interval-ms MS] [--count N]
//! mosc-cli metrics --addr 127.0.0.1:7070
//! ```
//!
//! Platform flags (shared): `--rows`, `--cols` (grid), `--layers` (3-D
//! stack), `--levels` (Table-IV set, 2–5), `--tmax` (°C), `--cooler`
//! (`default` | `budget` | `responsive`).
//!
//! All solver subcommands go through the unified dispatcher
//! `mosc_core::solve(SolverKind, &Platform, &SolveOptions)`, so any solver
//! name the core knows (`lns`, `exs`, `exs-bnb`, `ao`, `pco`, `governor`)
//! is accepted wherever an algorithm is named.
//!
//! The global `--obs[=pretty|json]` flag arms the `mosc-obs` recorder and
//! appends a telemetry report to any subcommand's output: a span tree with
//! self/total times, the metric table, and the solver decision log
//! (`pretty`, the default), or JSONL suitable for `BENCH_obs.json`-style
//! ingestion and the `M05x` telemetry lints (`json`).
//!
//! `analyze` runs the `mosc-analyze` pass-manager engine over any number of
//! artifact files — platform/schedule/solution specs, standalone schedule
//! text, solve-claim JSON (from `solve --claim` or a serve response), and
//! `.jsonl` telemetry or access-log streams — loading them once into a
//! typed model so the cross-artifact (`M08x`) and concurrency (`M09x`)
//! lints can join across files. Output is rustc-style text, a JSON findings
//! document, or SARIF 2.1.0 (`--format`). Per-code severities come from
//! repeatable `-A/-W/-D CODE` flags (`-D warnings` promotes all warnings)
//! layered over an optional `analyze.toml`; `--write-baseline`/`--baseline`
//! let CI acknowledge existing findings and fail only on new ones. Exit
//! codes are typed: `0` clean or warnings only, `1` denied findings, `2`
//! parse/structural, `4` I/O. See `DESIGN.md` §7 for the code table and
//! §13 for the engine.
//!
//! `profile` builds the platform of a spec file and runs every solver on
//! it — LNS, EXS, EXS-BnB, AO, PCO and the reactive governor — resetting
//! the recorder between solvers, so each section's telemetry (and the
//! closing comparison table) is attributable to one algorithm. A closing
//! period-map scaling section evaluates one two-mode schedule at
//! oscillation factors m ∈ {1, 64, 256} through both the modal kernel and
//! the interval-by-interval dense reference: the kernel's dense-op count
//! must stay flat in m while the reference's grows linearly, which the
//! `ci.sh` smoke asserts from the `{"type":"periodmap",...}` JSON lines.
//!
//! `serve` starts the `mosc-serve` daemon (newline-delimited JSON over
//! TCP; see DESIGN.md §11), and `client` is its line-oriented companion:
//! stdin lines become request lines, each response line is printed to
//! stdout — the zero-dependency stand-in for `nc` in scripts and `ci.sh`.
//! `client --batch` folds stdin's solve lines (which must share one
//! platform) into a single `solve_batch` request, so the daemon resolves
//! the platform once through its interning registry; the per-variant
//! results still print one per line.
//! `--access-log FILE` appends one JSONL line per completed request (the
//! `M07x` lints analyze it), and requests slower than `--slow-ms` carry
//! their solver span tree in that line.
//!
//! The v2 protocol threads a distributed-trace identity through all of
//! this: `client --trace` stamps each request with a fresh 128-bit trace
//! id (reported on stderr), the daemon continues it into per-request
//! server spans (batch variants become children of the dispatch span),
//! and every access-log line carries `trace_id`/`span_id`/`parent_id`.
//! `serve --flight-dump FILE` arms a lock-light in-memory flight ring of
//! request milestones; anomalies (deadline exceeded, queue saturation,
//! slow requests, worker panics) snapshot it into `flight_dump` JSONL
//! lines. `trace FILE...` (without `--schedule`) joins those artifacts by
//! trace id into per-trace waterfalls, and the `M120`–`M124` analyzer
//! lints check the identities line up.
//!
//! `stats` queries a running daemon's `stats` op and renders a one-screen
//! service summary — request/response counters, cache hit rate, queue
//! depth, req/s and latency quantiles; `--watch` redraws it every
//! `--interval-ms` (optionally `--count` times). `metrics` fetches the
//! `metrics` op and prints the raw Prometheus text exposition, ready to
//! pipe into a file a Prometheus instance scrapes via textfile collection.
//!
//! Exit codes: `0` success, `1` internal/solver failure, `2` usage error,
//! `3` infeasible instance, `4` I/O error. (`analyze` keeps exiting `1`
//! when error-severity findings are present — that is a verdict, not a
//! failure of the tool.)

use mosc::prelude::*;
use mosc::sched::eval::transient_trace;
use mosc::sched::text;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// A CLI failure, classified for the process exit code.
#[derive(Debug)]
enum CliError {
    /// Bad flags, unknown names, malformed values → exit 2 (plus usage).
    Usage(String),
    /// The instance has no feasible schedule → exit 3.
    Infeasible(String),
    /// Filesystem or socket trouble → exit 4.
    Io(String),
    /// Anything else (solver internals) → exit 1.
    Other(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            Self::Usage(m) | Self::Infeasible(m) | Self::Io(m) | Self::Other(m) => m,
        }
    }

    fn exit_code(&self) -> u8 {
        match self {
            Self::Other(_) => 1,
            Self::Usage(_) => 2,
            Self::Infeasible(_) => 3,
            Self::Io(_) => 4,
        }
    }
}

/// Classifies a solver failure: infeasibility and bad options are the
/// caller's problem, everything else is the tool's.
fn algo_error(context: &str, e: &AlgoError) -> CliError {
    let msg = format!("{context} failed: {e}");
    match e {
        AlgoError::Infeasible { .. } => CliError::Infeasible(msg),
        AlgoError::InvalidOptions { .. } => CliError::Usage(msg),
        _ => CliError::Other(msg),
    }
}

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    /// Whether a bare (valueless) flag like `--watch` is present.
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(s) => {
                s.parse().map_err(|_| CliError::Usage(format!("cannot parse {name} value '{s}'")))
            }
        }
    }

    /// A path-valued flag, or an error when the flag is present without a
    /// usable value (previously that case fell through silently).
    fn path_flag(&self, name: &str) -> Result<Option<&str>, CliError> {
        match self.0.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => match self.0.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v)),
                _ => Err(CliError::Usage(format!("{name} needs a file path"))),
            },
        }
    }

    /// The `--out` target.
    fn out_path(&self) -> Result<Option<&str>, CliError> {
        self.path_flag("--out")
    }
}

/// What the `--obs` flag asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObsMode {
    Off,
    Pretty,
    Json,
}

fn parse_obs(argv: &[String]) -> Result<ObsMode, CliError> {
    for a in argv {
        match a.as_str() {
            "--obs" | "--obs=pretty" => return Ok(ObsMode::Pretty),
            "--obs=json" => return Ok(ObsMode::Json),
            other => {
                if let Some(rest) = other.strip_prefix("--obs=") {
                    return Err(CliError::Usage(format!(
                        "unknown --obs format '{rest}' (expected pretty or json)"
                    )));
                }
            }
        }
    }
    Ok(ObsMode::Off)
}

/// Prints the recorder's current snapshot in the requested format.
fn emit_obs(mode: ObsMode) {
    let telemetry = mosc::obs::snapshot();
    match mode {
        ObsMode::Off => {}
        ObsMode::Pretty => {
            println!();
            print!("{}", telemetry.render_pretty());
        }
        ObsMode::Json => print!("{}", telemetry.to_jsonl()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  mosc-cli solve   --algo <lns|exs|exs-bnb|ao|pco|governor> [platform flags] [--out FILE]
                   [--claim FILE]  (write the solution-claim JSON `analyze` verifies)
  mosc-cli peak    --schedule FILE [platform flags]
  mosc-cli compare [platform flags]
  mosc-cli trace   --schedule FILE [--periods N] [--out FILE] [platform flags]
  mosc-cli trace   FILE.jsonl...  [--trace-id HEX] [--format text|json]
                   (join access logs + flight dumps by trace id into waterfalls)
  mosc-cli analyze FILE...  (spec.json, schedule.txt, claim.json, *.jsonl streams)
                   [-A|-W|-D CODE]... [-D warnings] [--format text|json|sarif]
                   [--baseline FILE] [--write-baseline FILE] [--config FILE | --no-config]
  mosc-cli profile SPEC.json
  mosc-cli serve   [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--deadline-ms MS]
                   [--access-log FILE] [--slow-ms MS] [--timeline FILE] [--timeline-window-ms MS]
                   [--frontend threads|evloop] [--idle-timeout-ms MS]
                   [--flight-dump FILE] [--flight-capacity N]
  mosc-cli client  [--addr HOST:PORT] [--batch] [--trace]  (stdin request lines -> stdout
                   response lines; --batch folds solve lines sharing one platform into a
                   single solve_batch; --trace stamps fresh trace ids, reported on stderr)
  mosc-cli stats   [--addr HOST:PORT] [--watch] [--interval-ms MS] [--count N]
  mosc-cli metrics [--addr HOST:PORT]  (print the Prometheus text exposition)
global: --obs[=pretty|json]  append a mosc-obs telemetry report to the output
platform flags: --rows R --cols C [--layers L] [--levels 2..5] --tmax C [--cooler default|budget|responsive]
exit codes: 0 ok, 1 failure, 2 usage, 3 infeasible, 4 I/O
            (analyze: 0 clean/warnings, 1 denied findings, 2 parse, 4 I/O)";

fn run() -> Result<ExitCode, CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return Err(CliError::Usage("missing subcommand".into()));
    };
    let obs_mode = parse_obs(&argv)?;
    if obs_mode != ObsMode::Off {
        mosc::obs::enable();
    }
    let args = Args(argv);

    // These subcommands don't take platform flags: `analyze` and `profile`
    // build their platform from the spec file, `serve`/`client` speak the
    // wire protocol.
    match cmd.as_str() {
        "analyze" => return analyze(&args),
        "profile" => return profile(&args, obs_mode),
        "serve" => {
            // Emit the telemetry window after the daemon drains: the
            // resulting JSONL is what the M060-M062 serve lints analyze.
            let code = serve(&args)?;
            emit_obs(obs_mode);
            return Ok(code);
        }
        "client" => return client(&args),
        "stats" => return stats(&args),
        "metrics" => return metrics(&args),
        // `trace` is two tools: with `--schedule` it is the legacy thermal
        // transient trace (a platform subcommand, handled below); with
        // artifact paths it joins access logs and flight dumps by trace id
        // into a per-trace waterfall.
        "trace" if !args.has("--schedule") => return trace_join(&args),
        _ => {}
    }

    let platform = build_platform(&args)?;
    let code = match cmd.as_str() {
        "solve" => solve(&args, &platform),
        "peak" => peak(&args, &platform),
        "compare" => {
            compare(&platform);
            Ok(())
        }
        "trace" => trace(&args, &platform),
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
    .map(|()| ExitCode::SUCCESS)?;
    emit_obs(obs_mode);
    Ok(code)
}

/// One summary row: name, wall seconds, `expm.calls`, `peak_eval.calls`, outcome.
type ProfileRow = (&'static str, f64, u64, u64, Result<Solution, String>);

/// Runs every solver on the spec's platform, one recorder window each, and
/// closes with a comparison table (pretty) or per-solver JSONL blocks.
fn profile(args: &Args, mode: ObsMode) -> Result<ExitCode, CliError> {
    let path = args
        .0
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("profile needs a SPEC.json path".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let platform = mosc::analyze::platform_from_spec(&text)
        .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
    // Profiling is pointless without the recorder; default to pretty.
    let json = mode == ObsMode::Json;
    mosc::obs::enable();

    // A short governor horizon: the propagator cache makes the per-step cost
    // trivial, but the default 300 s horizon is still 60k steps.
    let opts = SolveOptions {
        governor: mosc::algorithms::reactive::GovernorOptions {
            control_period: 0.01,
            horizon: 30.0,
            warmup: 15.0,
            ..mosc::algorithms::reactive::GovernorOptions::default()
        },
        ..SolveOptions::default()
    };

    let mut summary: Vec<ProfileRow> = Vec::new();
    // Discard anything recorded before the first window (e.g. by spec
    // parsing); each `drain()` below then extracts exactly one solver's
    // telemetry and atomically clears the recorder for the next one.
    let _ = mosc::obs::drain();
    for kind in SolverKind::all() {
        let name = kind.label();
        let start = std::time::Instant::now();
        let result = mosc::algorithms::solve(kind, &platform, &opts)
            .map(|r| r.solution)
            .map_err(|e| e.to_string());
        let wall = start.elapsed().as_secs_f64();
        let telemetry = mosc::obs::drain();
        let expm = telemetry.counter("expm.calls").unwrap_or(0);
        let peaks = telemetry.counter("peak_eval.calls").unwrap_or(0);
        if json {
            match &result {
                Ok(s) => println!(
                    "{{\"type\":\"profile\",\"solver\":{},\"wall_s\":{wall:?},\
                     \"throughput\":{:?},\"peak_c\":{:?},\"feasible\":{}}}",
                    json_quote(name),
                    s.throughput,
                    s.peak_c(&platform),
                    s.feasible
                ),
                Err(e) => println!(
                    "{{\"type\":\"profile\",\"solver\":{},\"wall_s\":{wall:?},\"error\":{}}}",
                    json_quote(name),
                    json_quote(e)
                ),
            }
            print!("{}", telemetry.to_jsonl());
        } else {
            println!("=== {name} ===");
            match &result {
                Ok(s) => println!(
                    "throughput {:.4}, peak {:.2} C, feasible {}, m = {}, wall {:.3} s",
                    s.throughput,
                    s.peak_c(&platform),
                    s.feasible,
                    s.m,
                    wall
                ),
                Err(e) => println!("failed: {e} (wall {wall:.3} s)"),
            }
            print!("{}", telemetry.render_pretty());
            println!();
        }
        summary.push((name, wall, expm, peaks, result));
    }

    if !json {
        println!(
            "{:<9} {:>9} {:>11} {:>15} {:>10}",
            "solver", "wall (s)", "expm.calls", "peak_eval.calls", "throughput"
        );
        for (name, wall, expm, peaks, result) in &summary {
            match result {
                Ok(s) => {
                    println!("{name:<9} {wall:>9.3} {expm:>11} {peaks:>15} {:>10.4}", s.throughput);
                }
                Err(_) => println!("{name:<9} {wall:>9.3} {expm:>11} {peaks:>15} {:>10}", "failed"),
            }
        }
        println!();
    }
    periodmap_section(&platform, json)?;
    Ok(ExitCode::SUCCESS)
}

/// The dense-op counters of the current recorder window: the modal kernel's
/// basis changes plus any full dense products.
fn dense_ops(t: &mosc::obs::Telemetry) -> u64 {
    t.counter("period_map.matmuls").unwrap_or(0) + t.counter("linalg.matmuls").unwrap_or(0)
}

/// The period-map scaling section of `profile`: one two-mode schedule
/// evaluated at m ∈ {1, 64, 256} through the modal kernel
/// (`SteadyState::compute`) and the interval-by-interval dense reference
/// (`compute_dense`), with each side's dense-op and `expm.calls` counters.
/// Both sides must agree on the steady state; the kernel's dense work must
/// not grow with m.
fn periodmap_section(platform: &Platform, json: bool) -> Result<ExitCode, CliError> {
    let n = platform.n_cores();
    let levels = platform.modes().levels();
    let (v_low, v_high) = (levels[0], *levels.last().expect("mode sets are non-empty"));
    let base = Schedule::two_mode(&vec![v_low; n], &vec![v_high; n], &vec![0.5; n], 0.05)
        .map_err(|e| CliError::Other(format!("period-map schedule: {e}")))?;
    if !json {
        println!("=== period-map scaling (two-mode schedule, oscillated) ===");
        println!(
            "{:>5} {:>9} {:>10} {:>10} {:>10} {:>11} {:>11} {:>10}",
            "m",
            "fast ops",
            "fast expm",
            "fast (s)",
            "dense ops",
            "dense expm",
            "dense (s)",
            "max |diff|"
        );
    }
    // Discard whatever the caller left in the recorder, then take one
    // drained window per kernel so the two sides' counters can't bleed.
    let _ = mosc::obs::drain();
    for &m in &[1usize, 64, 256] {
        let s = base.oscillated(m);
        let start = std::time::Instant::now();
        let fast =
            mosc::sched::eval::SteadyState::compute(platform.thermal(), platform.power(), &s)
                .map_err(|e| CliError::Other(format!("period-map fast path (m = {m}): {e}")))?;
        let fast_wall = start.elapsed().as_secs_f64();
        let t = mosc::obs::drain();
        let (fast_ops, fast_expm) = (dense_ops(&t), t.counter("expm.calls").unwrap_or(0));

        let start = std::time::Instant::now();
        let (dense_start, _) =
            mosc::sched::eval::compute_dense(platform.thermal(), platform.power(), &s).map_err(
                |e| CliError::Other(format!("period-map dense reference (m = {m}): {e}")),
            )?;
        let dense_wall = start.elapsed().as_secs_f64();
        let t = mosc::obs::drain();
        let (dense_ops, dense_expm) = (dense_ops(&t), t.counter("expm.calls").unwrap_or(0));

        let diff = fast.t_start().max_abs_diff(&dense_start);
        if diff > 1e-8 {
            return Err(CliError::Other(format!(
                "period-map kernel diverges from the dense reference at m = {m}: {diff}"
            )));
        }
        if json {
            println!(
                "{{\"type\":\"periodmap\",\"m\":{m},\"fast_ops\":{fast_ops},\
                 \"fast_expm\":{fast_expm},\"fast_wall_s\":{fast_wall:?},\
                 \"dense_ops\":{dense_ops},\"dense_expm\":{dense_expm},\
                 \"dense_wall_s\":{dense_wall:?},\"max_abs_diff\":{diff:?}}}"
            );
        } else {
            println!(
                "{m:>5} {fast_ops:>9} {fast_expm:>10} {fast_wall:>10.6} \
                 {dense_ops:>10} {dense_expm:>11} {dense_wall:>11.6} {diff:>10.2e}"
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Minimal JSON string quoting for the profile header lines.
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Everything `mosc-cli analyze` parses out of its argument list.
struct AnalyzeArgs {
    paths: Vec<String>,
    levels: Vec<(mosc::analyze::Code, mosc::analyze::pass::LintLevel)>,
    deny_warnings: bool,
    format: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    config: Option<String>,
    no_config: bool,
}

fn parse_analyze_args(args: &Args) -> Result<AnalyzeArgs, CliError> {
    use mosc::analyze::pass::LintLevel;
    use mosc::analyze::Code;
    let mut out = AnalyzeArgs {
        paths: Vec::new(),
        levels: Vec::new(),
        deny_warnings: false,
        format: "text".to_owned(),
        baseline: None,
        write_baseline: None,
        config: None,
        no_config: false,
    };
    let rest = &args.0[1..];
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        let mut value = |what: &str| -> Result<String, CliError> {
            i += 1;
            rest.get(i).cloned().ok_or_else(|| CliError::Usage(format!("{a} needs {what}")))
        };
        match a {
            "-A" | "--allow" | "-W" | "--warn" | "-D" | "--deny" => {
                let level = match a {
                    "-A" | "--allow" => LintLevel::Allow,
                    "-W" | "--warn" => LintLevel::Warn,
                    _ => LintLevel::Deny,
                };
                let v = value("a lint code")?;
                if v == "warnings" {
                    if level != LintLevel::Deny {
                        return Err(CliError::Usage(format!(
                            "'warnings' only combines with -D/--deny, not {a}"
                        )));
                    }
                    out.deny_warnings = true;
                } else {
                    let code = Code::parse(&v).ok_or_else(|| {
                        CliError::Usage(format!("unknown lint code '{v}' (expected M0xx)"))
                    })?;
                    out.levels.push((code, level));
                }
            }
            "--format" => out.format = value("text, json or sarif")?,
            "--baseline" => out.baseline = Some(value("a file path")?),
            "--write-baseline" => out.write_baseline = Some(value("a file path")?),
            "--config" => out.config = Some(value("a file path")?),
            "--no-config" => out.no_config = true,
            // The global --obs flag is handled by `run`; skip it here.
            obs if obs == "--obs" || obs.starts_with("--obs=") => {}
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown analyze flag '{flag}'")));
            }
            path => out.paths.push(path.to_owned()),
        }
        i += 1;
    }
    if out.paths.is_empty() {
        return Err(CliError::Usage("analyze needs at least one artifact path".into()));
    }
    Ok(out)
}

/// `mosc-cli analyze`: load every artifact into the typed model, run the
/// pass registry, apply severity configuration and the baseline, render.
///
/// Exit codes: `0` clean or warnings only, `1` error-severity findings,
/// `2` parse/structural failure in an artifact, `4` I/O failure.
fn analyze(args: &Args) -> Result<ExitCode, CliError> {
    use mosc::analyze::artifact::Artifacts;
    use mosc::analyze::{output, pass};
    let parsed = parse_analyze_args(args)?;

    // analyze.toml: explicit --config, else ./analyze.toml when present
    // (suppressed by --no-config). CLI flags layer on top.
    let toml_path = match (&parsed.config, parsed.no_config) {
        (Some(p), _) => Some(p.clone()),
        (None, true) => None,
        (None, false) => {
            std::path::Path::new("analyze.toml").exists().then(|| "analyze.toml".to_owned())
        }
    };
    let mut cfg = match &toml_path {
        None => pass::Config::new(),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError::Io(format!("cannot read {p}: {e}")))?;
            pass::Config::from_toml(&text).map_err(|e| CliError::Usage(e.to_string()))?
        }
    };
    for (code, level) in parsed.levels {
        cfg.set_level(code, level);
    }
    if parsed.deny_warnings {
        cfg.deny_warnings = true;
    }

    let mut inputs = Vec::with_capacity(parsed.paths.len());
    for path in &parsed.paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
        inputs.push((path.clone(), text));
    }
    let artifacts = Artifacts::load(&inputs).map_err(|e| CliError::Usage(e.to_string()))?;
    let configured = cfg.apply(&pass::run_passes(&artifacts));

    if let Some(out) = &parsed.write_baseline {
        std::fs::write(out, pass::render_baseline(&configured))
            .map_err(|e| CliError::Io(format!("cannot write baseline to '{out}': {e}")))?;
        println!("baseline ({} finding(s)) written to {out}", configured.diagnostics().len());
        return Ok(ExitCode::SUCCESS);
    }
    let report = match parsed.baseline.as_ref().or(cfg.baseline.as_ref()) {
        None => configured,
        Some(bp) => {
            let text = std::fs::read_to_string(bp)
                .map_err(|e| CliError::Io(format!("cannot read baseline {bp}: {e}")))?;
            pass::apply_baseline(&configured, &pass::parse_baseline(&text))
        }
    };

    match parsed.format.as_str() {
        "text" => print!("{}", report.render()),
        "json" => print!("{}", output::render_json(&report)),
        "sarif" => print!("{}", output::render_sarif(&report)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --format '{other}' (expected text, json or sarif)"
            )))
        }
    }
    if report.has_errors() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `mosc-cli serve`: run the solve daemon until a `shutdown` op arrives,
/// then drain and exit.
fn serve(args: &Args) -> Result<ExitCode, CliError> {
    let addr = args.flag("--addr").unwrap_or("127.0.0.1:7070").to_owned();
    let mut builder = mosc::serve::Server::builder()
        .addr(addr.clone())
        .workers(args.parse_or("--workers", 0usize)?)
        .queue_capacity(args.parse_or("--queue", 64usize)?)
        .cache_capacity(args.parse_or("--cache", 128usize)?)
        .frontend(match args.flag("--frontend") {
            None => mosc::serve::Frontend::default(),
            Some(s) => s.parse().map_err(CliError::Usage)?,
        })
        .slow_threshold({
            let ms: f64 = args.parse_or("--slow-ms", 100.0)?;
            if !ms.is_finite() || ms < 0.0 {
                return Err(CliError::Usage("--slow-ms must be >= 0".into()));
            }
            std::time::Duration::from_secs_f64(ms / 1e3)
        })
        .timeline_window({
            let ms: f64 = args.parse_or("--timeline-window-ms", 1000.0)?;
            if !ms.is_finite() || ms <= 0.0 {
                return Err(CliError::Usage("--timeline-window-ms must be > 0".into()));
            }
            std::time::Duration::from_secs_f64(ms / 1e3)
        });
    if let Some(s) = args.flag("--deadline-ms") {
        let ms: f64 = s
            .parse()
            .map_err(|_| CliError::Usage(format!("cannot parse --deadline-ms value '{s}'")))?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(CliError::Usage("--deadline-ms must be >= 0".into()));
        }
        builder = builder.default_deadline(std::time::Duration::from_secs_f64(ms / 1e3));
    }
    if let Some(s) = args.flag("--idle-timeout-ms") {
        let ms: f64 = s
            .parse()
            .map_err(|_| CliError::Usage(format!("cannot parse --idle-timeout-ms value '{s}'")))?;
        if !ms.is_finite() || ms <= 0.0 {
            return Err(CliError::Usage("--idle-timeout-ms must be > 0".into()));
        }
        builder = builder.idle_timeout(std::time::Duration::from_secs_f64(ms / 1e3));
    }
    if let Some(path) = args.flag("--access-log") {
        builder = builder.access_log(path);
    }
    if let Some(path) = args.flag("--timeline") {
        builder = builder.timeline(path);
    }
    if let Some(path) = args.flag("--flight-dump") {
        builder = builder.flight_dump(path);
        let capacity: usize =
            args.parse_or("--flight-capacity", mosc::obs::DEFAULT_FLIGHT_CAPACITY)?;
        if capacity == 0 {
            return Err(CliError::Usage("--flight-capacity must be > 0".into()));
        }
        builder = builder.flight_capacity(capacity);
    }
    let server = builder.bind().map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
    println!("mosc-serve listening on {}", server.local_addr());
    // Scripts wait for the line above before connecting.
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| CliError::Io(format!("serve: {e}")))?;
    println!("mosc-serve drained and stopped");
    Ok(ExitCode::SUCCESS)
}

/// `mosc-cli client`: forward stdin lines to a running daemon, printing
/// one response line per request — the portable replacement for `nc`.
///
/// `--batch` changes the framing, not the input format: the stdin lines
/// (plain solve requests sharing one platform) are folded into a single
/// `solve_batch` request, so the daemon resolves the platform once through
/// its interning registry, and the per-variant results are printed one per
/// line — same line count as without the flag.
fn client(args: &Args) -> Result<ExitCode, CliError> {
    let addr = args.flag("--addr").unwrap_or("127.0.0.1:7070");
    let io_err = |what: &'static str| {
        let addr = addr.to_owned();
        move |e: std::io::Error| CliError::Io(format!("client {what} {addr}: {e}"))
    };
    let mut stream = std::net::TcpStream::connect(addr).map_err(io_err("cannot connect to"))?;
    // One small request per write: without TCP_NODELAY, Nagle + delayed ACK
    // add tens of milliseconds of idle-link latency to every round trip.
    stream.set_nodelay(true).map_err(io_err("cannot set TCP_NODELAY on"))?;
    let read_half = stream.try_clone().map_err(io_err("cannot clone socket for"))?;
    let mut responses = std::io::BufReader::new(read_half);
    let trace = args.has("--trace");
    let stdin = std::io::stdin();
    if args.has("--batch") {
        return client_batch(&mut stream, &mut responses, addr, trace);
    }
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let mut line = line.map_err(|e| CliError::Io(format!("client stdin: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        if trace {
            line = originate_trace(&line, lineno + 1)?;
        }
        line.push('\n');
        stream.write_all(line.as_bytes()).map_err(io_err("cannot send to"))?;
        let mut response = String::new();
        let n = responses.read_line(&mut response).map_err(io_err("cannot read from"))?;
        if n == 0 {
            return Err(CliError::Io(format!("client: {addr} closed the connection")));
        }
        print!("{response}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `client --trace`: stamps a solve or `solve_batch` line with a fresh root
/// trace context (the line's own context wins when it already carries one)
/// and reports the originated trace id on stderr so scripts can join the
/// daemon's access log and flight dumps against it with `mosc-cli trace`.
fn originate_trace(line: &str, lineno: usize) -> Result<String, CliError> {
    use mosc::serve::{Request, TraceContext};
    let parsed = mosc::serve::parse_request(line)
        .map_err(|e| CliError::Usage(format!("stdin line {lineno}: {e}")))?;
    let root = || TraceContext {
        trace_id: mosc::serve::fresh_trace_id(),
        parent_id: mosc::serve::fresh_span_id(),
    };
    let stamped = match parsed {
        Request::Solve(mut req) => {
            let ctx = *req.trace.get_or_insert_with(root);
            eprintln!("trace {:032x} (line {lineno}, id {})", ctx.trace_id, req.id);
            Request::Solve(req)
        }
        Request::SolveBatch(mut req) => {
            let ctx = *req.trace.get_or_insert_with(root);
            eprintln!("trace {:032x} (line {lineno}, id {})", ctx.trace_id, req.id);
            Request::SolveBatch(req)
        }
        // Protocol ops carry no trace context; forward them untouched.
        other => other,
    };
    Ok(stamped.to_json())
}

/// The `client --batch` path: fold stdin's solve lines into one
/// `solve_batch` request and unpack the framed response.
fn client_batch(
    stream: &mut std::net::TcpStream,
    responses: &mut std::io::BufReader<std::net::TcpStream>,
    addr: &str,
    trace: bool,
) -> Result<ExitCode, CliError> {
    use mosc::serve::proto::canonical_json;
    use mosc::serve::{BatchRequest, BatchVariantRequest, Request};
    let mut batch: Option<BatchRequest> = None;
    let mut shared_platform = String::new();
    let stdin = std::io::stdin();
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| CliError::Io(format!("client stdin: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = mosc::serve::parse_request(&line)
            .map_err(|e| CliError::Usage(format!("stdin line {}: {e}", lineno + 1)))?;
        let Request::Solve(req) = parsed else {
            return Err(CliError::Usage(format!(
                "stdin line {}: --batch folds plain solve lines; protocol ops are not batchable",
                lineno + 1
            )));
        };
        let platform = canonical_json(&req.platform);
        let variant = BatchVariantRequest {
            kind: req.kind,
            options: req.options,
            want_schedule: req.want_schedule,
        };
        match &mut batch {
            None => {
                shared_platform = platform;
                // The first line's id names the batch; variant i answers
                // as "<id>#<i>". The first line's trace context (if any)
                // becomes the whole batch's.
                batch = Some(BatchRequest {
                    id: req.id,
                    platform: req.platform,
                    variants: vec![variant],
                    trace: req.trace,
                });
            }
            Some(b) => {
                if platform != shared_platform {
                    return Err(CliError::Usage(format!(
                        "stdin line {}: --batch needs one shared platform, but this line's \
                         platform differs from line 1's",
                        lineno + 1
                    )));
                }
                b.variants.push(variant);
            }
        }
    }
    let Some(mut batch) = batch else {
        return Err(CliError::Usage("--batch got no request lines on stdin".into()));
    };
    if trace {
        let ctx = *batch.trace.get_or_insert_with(|| mosc::serve::TraceContext {
            trace_id: mosc::serve::fresh_trace_id(),
            parent_id: mosc::serve::fresh_span_id(),
        });
        eprintln!("trace {:032x} (batch {})", ctx.trace_id, batch.id);
    }
    let mut line = Request::SolveBatch(batch.clone()).to_json();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| CliError::Io(format!("cannot send to {addr}: {e}")))?;
    let mut response = String::new();
    let n = responses
        .read_line(&mut response)
        .map_err(|e| CliError::Io(format!("cannot read from {addr}: {e}")))?;
    if n == 0 {
        return Err(CliError::Io(format!("client: {addr} closed the connection")));
    }
    let doc = mosc::analyze::json::Value::parse(&response)
        .map_err(|e| CliError::Other(format!("{addr} sent malformed JSON: {e}")))?;
    match doc.get("results").and_then(mosc::analyze::json::Value::as_array) {
        // One result line per stdin request, like the unbatched path —
        // plus the batch verdict (registry state) on stderr for scripts.
        Some(results) => {
            if let Some(registry) = doc.get("registry").and_then(mosc::analyze::json::Value::as_str)
            {
                eprintln!("batch {}: registry {registry}, {} variant(s)", batch.id, results.len());
            }
            for r in results {
                println!("{}", mosc::analyze::json::value_to_json(r));
            }
        }
        // Errors (overloaded, usage) come back unframed; pass them through.
        None => print!("{response}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// One persistent request/response connection to a running daemon, used by
/// `stats` and `metrics` (repeated polls reuse the socket so `--watch`
/// doesn't pay a connect per frame).
struct WireClient {
    addr: String,
    stream: std::net::TcpStream,
    responses: std::io::BufReader<std::net::TcpStream>,
}

impl WireClient {
    fn connect(addr: &str) -> Result<Self, CliError> {
        let io_err = |what: &str, e: std::io::Error| CliError::Io(format!("{what} {addr}: {e}"));
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| io_err("cannot connect to", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("cannot set TCP_NODELAY on", e))?;
        let read_half = stream.try_clone().map_err(|e| io_err("cannot clone socket for", e))?;
        Ok(Self { addr: addr.to_owned(), stream, responses: std::io::BufReader::new(read_half) })
    }

    /// Sends one request line and parses the one-line JSON response.
    fn request(&mut self, line: &str) -> Result<mosc::analyze::json::Value, CliError> {
        let addr = &self.addr;
        let mut line = line.to_owned();
        line.push('\n');
        self.stream
            .write_all(line.as_bytes())
            .map_err(|e| CliError::Io(format!("cannot send to {addr}: {e}")))?;
        let mut response = String::new();
        let n = self
            .responses
            .read_line(&mut response)
            .map_err(|e| CliError::Io(format!("cannot read from {addr}: {e}")))?;
        if n == 0 {
            return Err(CliError::Io(format!("{addr} closed the connection")));
        }
        mosc::analyze::json::Value::parse(&response)
            .map_err(|e| CliError::Other(format!("{addr} sent malformed JSON: {e}")))
    }
}

/// Renders one `stats` payload as the fixed-height summary `--watch` redraws.
fn render_stats(addr: &str, stats: &mosc::analyze::json::Value) -> String {
    let num =
        |key: &str| stats.get(key).and_then(mosc::analyze::json::Value::as_f64).unwrap_or(0.0);
    let int = |key: &str| num(key) as u64;
    let (hits, misses) = (num("cache_hits"), num("cache_misses"));
    let hit_rate = if hits + misses > 0.0 { 100.0 * hits / (hits + misses) } else { 0.0 };
    let mut out = format!(
        "mosc-serve {addr}  up {:.1} s\n\
         requests   {:>8}   responses {:>8}   req/s {:>8.1}\n\
         rejected   {:>8}   deadline+ {:>8}   malformed {:>4}\n\
         cache      {:>8} hit / {} miss ({hit_rate:.1}% hit, {} evicted, {} live)\n\
         queue      {:>8} deep (peak {})\n\
         latency ms {:>8.2} p50 {:>10.2} p90 {:>10.2} p99 {:>10.2} p999 {:>9.2} max\n",
        num("uptime_s"),
        int("requests"),
        int("responses"),
        num("req_per_s"),
        int("rejected"),
        int("deadline_exceeded"),
        int("malformed"),
        int("cache_hits"),
        int("cache_misses"),
        int("cache_evictions"),
        int("cache_len"),
        int("queue_depth"),
        int("queue_peak"),
        num("p50_ms"),
        num("p90_ms"),
        num("p99_ms"),
        num("p999_ms"),
        num("max_ms"),
    );
    // The slowest-bucket exemplar, when the daemon has one: the trace id to
    // feed `mosc-cli trace` for a worked example of the tail latency.
    if let Some(t) = stats.get("slow_exemplar").and_then(mosc::analyze::json::Value::as_str) {
        out.push_str(&format!("slow trace {t}\n"));
    }
    out
}

/// `mosc-cli stats`: poll a running daemon's `stats` op and render a live
/// service summary. Plain single shot by default; `--watch` redraws every
/// `--interval-ms` (clearing the screen only when stdout is a terminal),
/// `--count N` bounds the number of frames (useful in scripts).
fn stats(args: &Args) -> Result<ExitCode, CliError> {
    use std::io::IsTerminal;
    let addr = args.flag("--addr").unwrap_or("127.0.0.1:7070");
    let watch = args.has("--watch");
    let interval_ms: u64 = args.parse_or("--interval-ms", 1000u64)?;
    let frames: u64 = args.parse_or("--count", if watch { 0 } else { 1 })?;
    let tty = std::io::stdout().is_terminal();
    let mut client = WireClient::connect(addr)?;
    let mut served = 0u64;
    loop {
        let doc = client
            .request(&mosc::serve::Request::Stats { id: "cli-stats".to_owned() }.to_json())?;
        let stats = doc
            .get("stats")
            .ok_or_else(|| CliError::Other(format!("{addr}: stats response has no payload")))?;
        let frame = render_stats(addr, stats);
        if watch && tty {
            // Home + clear-below keeps the frame flicker-free; a full clear
            // would blank the screen between polls.
            print!("\x1b[H\x1b[J{frame}");
        } else {
            print!("{frame}");
        }
        let _ = std::io::stdout().flush();
        served += 1;
        if !watch || (frames > 0 && served >= frames) {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// `mosc-cli metrics`: fetch the `metrics` op once and print the decoded
/// Prometheus text exposition to stdout.
fn metrics(args: &Args) -> Result<ExitCode, CliError> {
    let addr = args.flag("--addr").unwrap_or("127.0.0.1:7070");
    let mut client = WireClient::connect(addr)?;
    let doc = client
        .request(&mosc::serve::Request::Metrics { id: "cli-metrics".to_owned() }.to_json())?;
    let text = doc
        .get("metrics")
        .and_then(mosc::analyze::json::Value::as_str)
        .ok_or_else(|| CliError::Other(format!("{addr}: metrics response has no payload")))?;
    print!("{text}");
    Ok(ExitCode::SUCCESS)
}

/// One access-log entry's server span, as joined by `mosc-cli trace`.
struct JoinSpan {
    span_id: String,
    parent_id: Option<String>,
    op: String,
    id: String,
    status: String,
    start_s: Option<f64>,
    total_s: Option<f64>,
    source: String,
}

/// One flight-ring milestone attributed to a trace. `seq` is the ring's
/// global sequence number: overlapping dumps re-export the same slots, so
/// the joiner dedups on it.
struct JoinEvent {
    seq: u64,
    span_id: String,
    kind: String,
    t_us: f64,
    value: f64,
    reason: String,
}

/// `mosc-cli trace FILE...`: joins access-log and flight-dump JSONL
/// artifacts by trace id and renders each trace as a waterfall — server
/// spans indented under their parents with offset/duration bars, followed
/// by the flight-ring milestones the daemon dumped for that trace.
/// `--trace-id HEX` narrows to one trace; `--format json` emits one
/// `{"type":"trace",...}` line per trace instead of text.
fn trace_join(args: &Args) -> Result<ExitCode, CliError> {
    use mosc::analyze::json::Value;
    use std::collections::BTreeMap;
    let mut paths: Vec<&str> = Vec::new();
    let mut want_trace: Option<&str> = None;
    let mut format = "text";
    let rest = &args.0[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--trace-id" | "--format" => {
                let flag = rest[i].as_str();
                i += 1;
                let v = rest
                    .get(i)
                    .map(String::as_str)
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
                if flag == "--trace-id" {
                    want_trace = Some(v);
                } else {
                    format = v;
                }
            }
            obs if obs == "--obs" || obs.starts_with("--obs=") => {}
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown trace flag '{flag}' (artifact-join mode; --schedule selects \
                     the thermal transient trace)"
                )));
            }
            path => paths.push(path),
        }
        i += 1;
    }
    if paths.is_empty() {
        return Err(CliError::Usage(
            "trace needs artifact paths (access log / flight dump JSONL) or --schedule FILE".into(),
        ));
    }
    if format != "text" && format != "json" {
        return Err(CliError::Usage(format!(
            "unknown --format '{format}' (expected text or json)"
        )));
    }

    // trace id -> (spans, flight events), deterministically ordered.
    let mut traces: BTreeMap<String, (Vec<JoinSpan>, Vec<JoinEvent>)> = BTreeMap::new();
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = Value::parse(line) else { continue };
            let str_of =
                |v: &Value, key: &str| v.get(key).and_then(Value::as_str).map(String::from);
            let num_of = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
            match v.get("type").and_then(Value::as_str) {
                Some("access") => {
                    let (Some(trace_id), Some(span_id)) =
                        (str_of(&v, "trace_id"), str_of(&v, "span_id"))
                    else {
                        continue;
                    };
                    traces.entry(trace_id).or_default().0.push(JoinSpan {
                        span_id,
                        parent_id: str_of(&v, "parent_id"),
                        op: str_of(&v, "op").unwrap_or_else(|| "?".into()),
                        id: str_of(&v, "id").unwrap_or_else(|| "?".into()),
                        status: str_of(&v, "status").unwrap_or_else(|| "?".into()),
                        start_s: num_of(&v, "t_recv_s"),
                        total_s: num_of(&v, "total_s"),
                        source: format!("{path}:{}", lineno + 1),
                    });
                }
                Some("flight_dump") => {
                    let reason = str_of(&v, "reason").unwrap_or_else(|| "?".into());
                    for e in v.get("entries").and_then(Value::as_array).unwrap_or(&[]) {
                        let (Some(trace_id), Some(span_id)) =
                            (str_of(e, "trace_id"), str_of(e, "span_id"))
                        else {
                            continue;
                        };
                        traces.entry(trace_id).or_default().1.push(JoinEvent {
                            seq: num_of(e, "seq").unwrap_or(0.0) as u64,
                            span_id,
                            kind: str_of(e, "kind").unwrap_or_else(|| "?".into()),
                            t_us: num_of(e, "t_us").unwrap_or(0.0),
                            value: num_of(e, "value").unwrap_or(0.0),
                            reason: reason.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    if let Some(want) = want_trace {
        traces.retain(|t, _| t == want);
        if traces.is_empty() {
            return Err(CliError::Usage(format!("trace id {want} appears in no artifact")));
        }
    }
    if traces.is_empty() {
        println!("no traced entries in the given artifacts");
        return Ok(ExitCode::SUCCESS);
    }
    for (trace_id, (spans, events)) in &mut traces {
        spans.sort_by(|a, b| a.start_s.unwrap_or(0.0).total_cmp(&b.start_s.unwrap_or(0.0)));
        // Overlapping ring dumps re-export the same slots; the ring seq is
        // globally unique, so it dedups them exactly.
        events.sort_by_key(|e| e.seq);
        events.dedup_by_key(|e| e.seq);
        if format == "json" {
            println!("{}", render_trace_json(trace_id, spans, events));
        } else {
            print!("{}", render_trace_text(trace_id, spans, events));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// One trace as a JSONL object, for scripted consumers of `mosc-cli trace`.
fn render_trace_json(trace_id: &str, spans: &[JoinSpan], events: &[JoinEvent]) -> String {
    let mut out = format!("{{\"type\":\"trace\",\"trace_id\":{}", json_quote(trace_id));
    out.push_str(",\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"span_id\":{},\"parent_id\":{},\"op\":{},\"id\":{},\"status\":{},\
             \"start_s\":{},\"total_s\":{},\"source\":{}}}",
            json_quote(&s.span_id),
            s.parent_id.as_deref().map_or_else(|| "null".into(), json_quote),
            json_quote(&s.op),
            json_quote(&s.id),
            json_quote(&s.status),
            s.start_s.map_or_else(|| "null".into(), |v| format!("{v:?}")),
            s.total_s.map_or_else(|| "null".into(), |v| format!("{v:?}")),
            json_quote(&s.source),
        ));
    }
    out.push_str("],\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"span_id\":{},\"kind\":{},\"t_us\":{},\"value\":{},\"reason\":{}}}",
            json_quote(&e.span_id),
            json_quote(&e.kind),
            e.t_us,
            e.value,
            json_quote(&e.reason),
        ));
    }
    out.push_str("]}");
    out
}

/// One trace as an indented text waterfall over one shared time axis.
fn render_trace_text(trace_id: &str, spans: &[JoinSpan], events: &[JoinEvent]) -> String {
    const BAR: usize = 24;
    let mut out =
        format!("trace {trace_id} — {} span(s), {} flight event(s)\n", spans.len(), events.len());
    // The trace's time axis: [earliest start, latest end] over timed spans.
    let t0 = spans.iter().filter_map(|s| s.start_s).fold(f64::INFINITY, f64::min);
    let t1 = spans
        .iter()
        .filter_map(|s| Some(s.start_s? + s.total_s.unwrap_or(0.0)))
        .fold(f64::NEG_INFINITY, f64::max);
    let axis = (t1 - t0).max(1e-9);
    // Parent-first rendering: roots are spans whose parent is absent from
    // the trace (the client side is never logged); children indent one stop.
    let here: std::collections::HashSet<&str> = spans.iter().map(|s| s.span_id.as_str()).collect();
    let mut rendered = vec![false; spans.len()];
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(spans.len());
    for (i, s) in spans.iter().enumerate() {
        let is_root = s.parent_id.as_deref().is_none_or(|p| !here.contains(p));
        if is_root && !rendered[i] {
            push_span_subtree(i, 0, spans, &mut rendered, &mut order);
        }
    }
    // Cycles or self-parents (the M121 defects) would otherwise vanish.
    for i in 0..spans.len() {
        if !rendered[i] {
            push_span_subtree(i, 0, spans, &mut rendered, &mut order);
        }
    }
    for (i, depth) in order {
        let s = &spans[i];
        let indent = "  ".repeat(depth + 1);
        match (s.start_s, s.total_s) {
            (Some(start), total) => {
                let total = total.unwrap_or(0.0);
                let lo = (((start - t0) / axis) * BAR as f64).floor() as usize;
                let hi = ((((start + total) - t0) / axis) * BAR as f64).ceil() as usize;
                let (lo, hi) = (lo.min(BAR - 1), hi.clamp(lo + 1, BAR));
                let bar: String =
                    (0..BAR).map(|p| if p >= lo && p < hi { '=' } else { '·' }).collect();
                out.push_str(&format!(
                    "{indent}span {} {:<12} {:<10} {:<7} +{:>9.3}ms |{bar}| {:.3}ms  ({})\n",
                    s.span_id,
                    s.op,
                    s.id,
                    s.status,
                    (start - t0) * 1e3,
                    total * 1e3,
                    s.source,
                ));
            }
            (None, _) => out.push_str(&format!(
                "{indent}span {} {:<12} {:<10} {:<7} (no timing)  ({})\n",
                s.span_id, s.op, s.id, s.status, s.source,
            )),
        }
    }
    for e in events {
        out.push_str(&format!(
            "  flight {} {:<9} t+{:.3}ms value {} (dump: {})\n",
            e.span_id,
            e.kind,
            e.t_us / 1e3,
            e.value,
            e.reason,
        ));
    }
    out
}

/// Depth-first pre-order walk over one span's subtree (children = spans
/// naming it as parent), appending `(index, depth)` rows to `order`.
fn push_span_subtree(
    i: usize,
    depth: usize,
    spans: &[JoinSpan],
    rendered: &mut [bool],
    order: &mut Vec<(usize, usize)>,
) {
    rendered[i] = true;
    order.push((i, depth));
    let me = spans[i].span_id.as_str();
    for (j, s) in spans.iter().enumerate() {
        if !rendered[j] && s.parent_id.as_deref() == Some(me) {
            push_span_subtree(j, depth + 1, spans, rendered, order);
        }
    }
}

fn build_platform(args: &Args) -> Result<Platform, CliError> {
    let rows: usize = args.parse_or("--rows", 2)?;
    let cols: usize = args.parse_or("--cols", 3)?;
    let layers: usize = args.parse_or("--layers", 1)?;
    let levels: usize = args.parse_or("--levels", 2)?;
    let tmax: f64 = args.parse_or("--tmax", 55.0)?;
    if !(2..=5).contains(&levels) {
        return Err(CliError::Usage("--levels must be 2..=5 (Table IV sets)".into()));
    }
    let mut spec = PlatformSpec::paper(rows, cols, levels, tmax);
    spec.layers = layers;
    spec.rc = match args.flag("--cooler").unwrap_or("default") {
        "default" => RcConfig::default(),
        "budget" => RcConfig::budget_cooler(),
        "responsive" => RcConfig::responsive_package(),
        other => return Err(CliError::Usage(format!("unknown cooler '{other}'"))),
    };
    Platform::build(&spec).map_err(|e| CliError::Other(format!("platform build failed: {e}")))
}

fn solve(args: &Args, platform: &Platform) -> Result<(), CliError> {
    let algo = args.flag("--algo").unwrap_or("ao");
    let kind: SolverKind = algo
        .parse()
        .map_err(|e: mosc::algorithms::UnknownSolverError| CliError::Usage(e.to_string()))?;
    let report = mosc::algorithms::solve(kind, platform, &SolveOptions::default())
        .map_err(|e| algo_error(algo, &e))?;
    if kind == SolverKind::ExsBnb {
        let stats = &report.stats;
        eprintln!(
            "bnb: visited {} nodes ({} thermal prunes, {} throughput prunes)",
            stats.explored, stats.thermal_prunes, stats.throughput_prunes
        );
    }
    // `--claim FILE`: emit the solution-claim JSON that `analyze` verifies
    // against the platform with the M081 lint.
    if let Some(path) = args.path_flag("--claim")? {
        std::fs::write(path, report.claim_json(kind, platform))
            .map_err(|e| CliError::Io(format!("cannot write claim to '{path}': {e}")))?;
        println!("claim written to {path}");
    }
    let sol = report.solution;

    println!(
        "{}: throughput {:.4}, peak {:.2} C, feasible {}, m = {}",
        sol.algorithm,
        sol.throughput,
        sol.peak_c(platform),
        sol.feasible,
        sol.m
    );
    let rendered = text::to_text(&sol.schedule);
    match args.out_path()? {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| CliError::Io(format!("cannot write schedule to '{path}': {e}")))?;
            println!("schedule written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn load_schedule(args: &Args, platform: &Platform) -> Result<Schedule, CliError> {
    let path =
        args.flag("--schedule").ok_or_else(|| CliError::Usage("missing --schedule FILE".into()))?;
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    let schedule =
        text::from_text(&content).map_err(|e| CliError::Usage(format!("parse {path}: {e}")))?;
    if schedule.n_cores() != platform.n_cores() {
        return Err(CliError::Usage(format!(
            "schedule has {} cores but the platform has {}",
            schedule.n_cores(),
            platform.n_cores()
        )));
    }
    Ok(schedule)
}

fn peak(args: &Args, platform: &Platform) -> Result<(), CliError> {
    let schedule = load_schedule(args, platform)?;
    let report =
        platform.peak(&schedule).map_err(|e| CliError::Other(format!("evaluation failed: {e}")))?;
    println!(
        "peak {:.3} C on core {} at t = {:.6} s ({}); T_max = {:.1} C -> {}",
        platform.to_celsius(report.temp),
        report.core,
        report.time,
        if report.exact { "exact, Theorem 1" } else { "sampled" },
        platform.t_max_c(),
        if report.temp <= platform.t_max() + 1e-9 { "SAFE" } else { "VIOLATION" }
    );
    println!("throughput {:.4}", schedule.throughput_with_overhead(platform.overhead()));
    Ok(())
}

/// The quick four-way table: the fast solvers only (EXS-BnB and the
/// governor are left to `profile`, which owns a telemetry window per
/// solver).
fn compare(platform: &Platform) {
    println!("{:<8} {:>10} {:>10} {:>9} {:>5}", "algo", "throughput", "peak (C)", "feasible", "m");
    let opts = SolveOptions::default();
    for kind in [SolverKind::Lns, SolverKind::Exs, SolverKind::Ao, SolverKind::Pco] {
        match mosc::algorithms::solve(kind, platform, &opts) {
            Ok(r) => println!(
                "{:<8} {:>10.4} {:>10.2} {:>9} {:>5}",
                kind.label(),
                r.solution.throughput,
                r.solution.peak_c(platform),
                r.solution.feasible,
                r.solution.m
            ),
            Err(e) => println!("{:<8} failed: {e}", kind.label()),
        }
    }
}

fn trace(args: &Args, platform: &Platform) -> Result<(), CliError> {
    let schedule = load_schedule(args, platform)?;
    let periods: usize = args.parse_or("--periods", 10)?;
    let t0 = mosc::linalg::Vector::zeros(platform.thermal().n_nodes());
    let tr = transient_trace(platform.thermal(), platform.power(), &schedule, &t0, periods, 50)
        .map_err(|e| CliError::Other(format!("trace failed: {e}")))?;
    let csv = tr.to_csv(platform.t_ambient_c());
    match args.out_path()? {
        Some(path) => {
            std::fs::write(path, &csv)
                .map_err(|e| CliError::Io(format!("cannot write trace to '{path}': {e}")))?;
            println!("trace ({} samples) written to {path}", tr.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}
