//! # mosc — frequency-oscillation scheduling for temperature-constrained multi-cores
//!
//! A from-scratch Rust reproduction of **Sha, Wen, Fan, Ren, Quan,
//! "Performance Maximization via Frequency Oscillation on Temperature
//! Constrained Multi-core Processors" (ICPP 2016)**: maximize the chip-wide
//! throughput of a DVFS-capable multi-core processor while guaranteeing its
//! peak temperature never exceeds a threshold.
//!
//! ## Quick start
//!
//! ```
//! use mosc::prelude::*;
//!
//! // A 6-core (2x3) chip with the paper's 2-level DVFS table at T_max = 55 C.
//! let platform = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
//!
//! // The paper's AO algorithm: ideal point -> neighboring levels ->
//! // m-Oscillating schedule -> TPT ratio adjustment.
//! let solution = mosc::algorithms::ao::solve(&platform).unwrap();
//! assert!(solution.feasible);
//!
//! // The baseline exhaustive search over constant assignments (Algorithm 1).
//! let baseline = mosc::algorithms::exs::solve(&platform).unwrap();
//! assert!(solution.throughput >= baseline.throughput - 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`linalg`] | dense matrices, LU, matrix exponential, Jacobi eigensolver |
//! | [`thermal`] | floorplans, `HotSpot`-style RC networks, LTI thermal solver |
//! | [`power`] | DVFS mode tables, the `α + βT + γv³` power model, overhead |
//! | [`sched`] | periodic schedules, step-up / m-Oscillating transforms, peaks |
//! | [`algorithms`] | LNS, EXS, AO (Algorithm 2), PCO, reactive governor |
//! | [`analyze`] | static-analysis lints (`M0xx` diagnostics) over platforms, schedules, solutions |
//! | [`obs`] | zero-dependency spans, metrics and event telemetry (`--obs`, `mosc-cli profile`) |
//! | [`serve`] | concurrent solve service: TCP daemon, worker pool, LRU cache (`mosc-cli serve`) |
//! | [`workload`] | seeded random generators for experiments |
//!
//! Every table and figure of the paper has a regenerating binary in
//! `mosc-bench` (see DESIGN.md §5 and EXPERIMENTS.md).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use mosc_analyze as analyze;
pub use mosc_core as algorithms;
pub use mosc_linalg as linalg;
pub use mosc_obs as obs;
pub use mosc_power as power;
pub use mosc_sched as sched;
pub use mosc_serve as serve;
pub use mosc_thermal as thermal;
pub use mosc_workload as workload;

/// The most commonly used types, re-exported for `use mosc::prelude::*`.
pub mod prelude {
    pub use mosc_core::{
        ao::AoOptions, AlgoError, Solution, SolveOptions, SolveReport, SolverKind, SolverStats,
    };
    pub use mosc_power::{ModeTable, Params65nm, PowerModel, TransitionOverhead};
    pub use mosc_sched::{CoreSchedule, Platform, PlatformSpec, Schedule, Segment};
    pub use mosc_thermal::{Floorplan, Materials, RcConfig, RcNetwork, ThermalModel};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let spec = PlatformSpec::paper(1, 2, 2, 55.0);
        let platform = Platform::build(&spec).unwrap();
        assert_eq!(platform.n_cores(), 2);
    }
}
