//! Integration tests for the `mosc-cli` binary: the full
//! solve → serialize → re-load → evaluate loop through the text format.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mosc-cli"))
}

#[test]
fn solve_then_peak_roundtrip() {
    let dir = std::env::temp_dir().join("mosc_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sched_path = dir.join("ao_sched.txt");

    let out = cli()
        .args([
            "solve", "--algo", "ao", "--rows", "1", "--cols", "3", "--levels", "2", "--tmax", "55",
            "--out",
        ])
        .arg(&sched_path)
        .output()
        .expect("run solve");
    assert!(out.status.success(), "solve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("AO:"), "{stdout}");
    assert!(stdout.contains("feasible true"), "{stdout}");
    assert!(sched_path.exists());

    let out = cli()
        .args(["peak", "--rows", "1", "--cols", "3", "--levels", "2", "--tmax", "55", "--schedule"])
        .arg(&sched_path)
        .output()
        .expect("run peak");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SAFE"), "{stdout}");
    assert!(stdout.contains("Theorem 1"), "{stdout}");
}

#[test]
fn compare_prints_all_algorithms() {
    let out = cli()
        .args(["compare", "--rows", "1", "--cols", "2", "--levels", "2", "--tmax", "60"])
        .output()
        .expect("run compare");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["LNS", "EXS", "AO", "PCO"] {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");

    let out = cli()
        .args(["solve", "--algo", "nonsense", "--rows", "1", "--cols", "2"])
        .output()
        .expect("run");
    assert!(!out.status.success());

    let out = cli().args(["solve", "--levels", "9"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("levels"));

    // peak without --schedule
    let out = cli().args(["peak"]).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn schedule_core_count_mismatch_detected() {
    let dir = std::env::temp_dir().join("mosc_cli_test2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("two_core.txt");
    std::fs::write(&path, "period 0.1\ncore 0: 0.6 x 0.1\ncore 1: 0.6 x 0.1\n").expect("write");
    let out = cli()
        .args(["peak", "--rows", "1", "--cols", "3", "--tmax", "55", "--schedule"])
        .arg(&path)
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cores"));
}
