//! Integration tests for the `mosc-cli` binary: the full
//! solve → serialize → re-load → evaluate loop through the text format.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mosc-cli"))
}

#[test]
fn solve_then_peak_roundtrip() {
    let dir = std::env::temp_dir().join("mosc_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sched_path = dir.join("ao_sched.txt");

    let out = cli()
        .args([
            "solve", "--algo", "ao", "--rows", "1", "--cols", "3", "--levels", "2", "--tmax", "55",
            "--out",
        ])
        .arg(&sched_path)
        .output()
        .expect("run solve");
    assert!(out.status.success(), "solve failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("AO:"), "{stdout}");
    assert!(stdout.contains("feasible true"), "{stdout}");
    assert!(sched_path.exists());

    let out = cli()
        .args(["peak", "--rows", "1", "--cols", "3", "--levels", "2", "--tmax", "55", "--schedule"])
        .arg(&sched_path)
        .output()
        .expect("run peak");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SAFE"), "{stdout}");
    assert!(stdout.contains("Theorem 1"), "{stdout}");
}

#[test]
fn compare_prints_all_algorithms() {
    let out = cli()
        .args(["compare", "--rows", "1", "--cols", "2", "--levels", "2", "--tmax", "60"])
        .output()
        .expect("run compare");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["LNS", "EXS", "AO", "PCO"] {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");

    let out = cli()
        .args(["solve", "--algo", "nonsense", "--rows", "1", "--cols", "2"])
        .output()
        .expect("run");
    assert!(!out.status.success());

    let out = cli().args(["solve", "--levels", "9"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("levels"));

    // peak without --schedule
    let out = cli().args(["peak"]).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn schedule_core_count_mismatch_detected() {
    let dir = std::env::temp_dir().join("mosc_cli_test2");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("two_core.txt");
    std::fs::write(&path, "period 0.1\ncore 0: 0.6 x 0.1\ncore 1: 0.6 x 0.1\n").expect("write");
    let out = cli()
        .args(["peak", "--rows", "1", "--cols", "3", "--tmax", "55", "--schedule"])
        .arg(&path)
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cores"));
}

#[test]
fn obs_json_emits_span_tree_and_kernel_counters() {
    let out = cli()
        .args(["solve", "--algo", "ao", "--rows", "1", "--cols", "3", "--tmax", "55", "--obs=json"])
        .output()
        .expect("run solve --obs=json");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The m-sweep span must appear nested under the solve root.
    assert!(
        stdout.contains(r#""path":"ao.solve/ao.sweep_m""#),
        "missing nested sweep span in {stdout}"
    );
    // Kernel and solver counters are present and nonzero. AO runs entirely
    // through the modal period-map kernel, so `expm.calls` no longer
    // appears; the kernel's own counters do.
    for name in [
        "period_map.matmuls",
        "steady_state.cache_hits",
        "ao.tpt_rounds",
        "ao.m_candidates",
        "peak_eval.calls",
    ] {
        let line = stdout
            .lines()
            .find(|l| l.contains(&format!(r#""name":"{name}""#)))
            .unwrap_or_else(|| panic!("missing counter {name} in {stdout}"));
        assert!(!line.contains(r#""value":0"#), "zero {name}: {line}");
    }
}

#[test]
fn obs_pretty_renders_report_after_output() {
    let out = cli()
        .args(["solve", "--algo", "lns", "--rows", "1", "--cols", "2", "--tmax", "60", "--obs"])
        .output()
        .expect("run solve --obs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LNS:"), "{stdout}");
    assert!(stdout.contains("lns.solve"), "missing span tree in {stdout}");

    let out = cli()
        .args(["solve", "--rows", "1", "--cols", "2", "--tmax", "60", "--obs=yaml"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("yaml"));
}

#[test]
fn profile_reports_all_six_solvers() {
    let dir = std::env::temp_dir().join("mosc_cli_profile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        r#"{"platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0}}"#,
    )
    .expect("write spec");

    let out = cli().arg("profile").arg(&spec).output().expect("run profile");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["LNS", "EXS", "EXS-BnB", "AO", "PCO", "Governor"] {
        assert!(stdout.contains(&format!("=== {name} ===")), "missing {name} in {stdout}");
    }
    assert!(stdout.contains("expm.calls"), "summary table missing in {stdout}");

    let out = cli().arg("profile").arg(&spec).arg("--obs=json").output().expect("run profile json");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["LNS", "EXS", "EXS-BnB", "AO", "PCO", "Governor"] {
        assert!(
            stdout.contains(&format!(r#""type":"profile","solver":"{name}""#)),
            "missing {name} profile line in {stdout}"
        );
    }

    let out = cli().args(["profile"]).output().expect("run profile without spec");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("SPEC"));
}

#[test]
fn out_flag_errors_carry_the_path() {
    // --out without a value must not fall through to stdout silently.
    let out = cli()
        .args(["solve", "--rows", "1", "--cols", "2", "--tmax", "60", "--out"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out needs a file path"));

    // An unwritable path must report which path failed.
    let bad = std::env::temp_dir().join("mosc_no_such_dir").join("sched.txt");
    let out = cli()
        .args(["solve", "--rows", "1", "--cols", "2", "--tmax", "60", "--out"])
        .arg(&bad)
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write schedule to") && stderr.contains("mosc_no_such_dir"),
        "{stderr}"
    );
}

const SPEC_1X2: &str =
    r#"{"platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0}}"#;

/// The analyze engine's typed exit codes: 0 clean/warnings, 1 denied
/// findings, 2 parse/structural, 4 I/O.
#[test]
fn analyze_exit_codes_are_typed() {
    let dir = std::env::temp_dir().join("mosc_cli_analyze_codes");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, SPEC_1X2).expect("write spec");

    // Clean spec -> 0.
    let out = cli().args(["analyze"]).arg(&spec).output().expect("run");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Missing file -> 4 (I/O).
    let out = cli().args(["analyze"]).arg(dir.join("missing.json")).output().expect("run");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));

    // Structural garbage -> 2 (parse).
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json at all").expect("write");
    let out = cli().args(["analyze"]).arg(&garbage).output().expect("run");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));

    // Off-table schedule voltage against the spec -> M080 error -> 1.
    let sched = dir.join("sched.txt");
    std::fs::write(&sched, "period 0.1\ncore 0: 0.9 x 0.1\ncore 1: 0.6 x 0.1\n").expect("write");
    let out = cli().args(["analyze"]).arg(&spec).arg(&sched).output().expect("run");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("M080"));

    // The same finding allowed -> 0; demoted to warning -> 0.
    for flags in [["-A", "M080"], ["-W", "M080"]] {
        let out = cli().args(["analyze"]).args(flags).arg(&spec).arg(&sched).output().expect("run");
        assert_eq!(out.status.code(), Some(0), "{flags:?}");
    }

    // Acknowledged in a baseline -> 0 on the next run.
    let baseline = dir.join("baseline.txt");
    let out = cli()
        .args(["analyze", "--write-baseline"])
        .arg(&baseline)
        .arg(&spec)
        .arg(&sched)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args(["analyze", "--baseline"])
        .arg(&baseline)
        .arg(&spec)
        .arg(&sched)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));

    // SARIF output is one valid JSON document even on findings.
    let out =
        cli().args(["analyze", "--format", "sarif"]).arg(&spec).arg(&sched).output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert!(sarif.contains("\"2.1.0\""), "{sarif}");
    assert!(sarif.contains("M080"), "{sarif}");
}

/// `solve --claim` emits a claim document that `analyze` verifies clean
/// against the matching spec — and catches when it is tampered with.
#[test]
fn solve_claim_round_trips_through_analyze() {
    let dir = std::env::temp_dir().join("mosc_cli_claim");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, SPEC_1X2).expect("write spec");
    let claim = dir.join("claim.json");

    let out = cli()
        .args([
            "solve", "--algo", "ao", "--rows", "1", "--cols", "2", "--levels", "2", "--tmax", "55",
            "--claim",
        ])
        .arg(&claim)
        .output()
        .expect("run solve");
    assert!(out.status.success(), "solve failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(claim.exists());

    // The CLI platform flags build the same platform as the spec file, so
    // the claim recomputes exactly: deny-warnings clean.
    let out = cli()
        .args(["analyze", "-D", "warnings"])
        .arg(&spec)
        .arg(&claim)
        .output()
        .expect("run analyze");
    assert_eq!(
        out.status.code(),
        Some(0),
        "claim did not verify:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Tampering with the claimed throughput is caught (M081 -> exit 1).
    let text = std::fs::read_to_string(&claim).expect("read claim");
    let tampered = text.replacen("\"throughput\":", "\"throughput\":2e3,\"was\":", 1);
    assert_ne!(tampered, text);
    std::fs::write(&claim, tampered).expect("write tampered claim");
    let out = cli().args(["analyze"]).arg(&spec).arg(&claim).output().expect("run analyze");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("M081"));
}
