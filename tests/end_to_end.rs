//! End-to-end integration: platform assembly → scheduling algorithms →
//! independent verification of the thermal guarantee with the RK4
//! reference integrator (no shared code path with the analytic solver that
//! the algorithms themselves use).

use mosc::algorithms::{continuous, solve};
use mosc::prelude::*;
use mosc::sched::eval::SteadyState;
use mosc::thermal::sim;

fn quick_opts() -> SolveOptions {
    SolveOptions {
        base_period: 0.05,
        max_m: 64,
        m_patience: 4,
        t_unit_divisor: 50,
        phase_steps: 4,
        samples: 200,
        refill_divisor: 40,
        ..SolveOptions::default()
    }
}

/// Simulates `schedule` with RK4 from the analytic stable-status start and
/// returns the hottest core temperature seen across `periods` periods.
fn rk4_peak(platform: &Platform, schedule: &Schedule, periods: usize) -> f64 {
    let ss =
        SteadyState::compute(platform.thermal(), platform.power(), schedule).expect("steady state");
    let segments: Vec<(Vec<f64>, f64)> = schedule
        .state_intervals()
        .into_iter()
        .map(|(v, l)| (platform.power().psi_profile(&v), l))
        .collect();
    let mut state = ss.t_start().clone();
    let mut peak = platform.thermal().max_core_temp(&state);
    let dt = (schedule.period() / 400.0).min(1e-3);
    for _ in 0..periods {
        let (end, trace) =
            sim::integrate_piecewise(platform.thermal(), &state, &segments, dt, 5).expect("rk4");
        peak = peak.max(trace.peak().expect("trace").temp);
        state = end;
    }
    peak
}

#[test]
fn ao_guarantee_holds_under_independent_rk4_simulation() {
    for (rows, cols, t_max_c) in [(1usize, 3usize, 55.0), (2, 3, 55.0)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 2, t_max_c)).expect("platform");
        let sol = solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution;
        assert!(sol.feasible);
        let simulated = rk4_peak(&platform, &sol.schedule, 3);
        assert!(
            simulated <= platform.t_max() + 0.05,
            "{rows}x{cols}: RK4-simulated peak {simulated} exceeds T_max {} by more than \
             integration tolerance",
            platform.t_max()
        );
    }
}

#[test]
fn exs_winner_verified_by_rk4() {
    let platform = Platform::build(&PlatformSpec::paper(1, 3, 3, 55.0)).expect("platform");
    let sol = solve(SolverKind::Exs, &platform, &quick_opts()).expect("EXS").solution;
    let simulated = rk4_peak(&platform, &sol.schedule, 2);
    assert!(simulated <= platform.t_max() + 0.05);
}

#[test]
fn algorithm_ordering_holds_across_the_grid() {
    // LNS <= EXS and LNS <= AO on every paper configuration (2-level).
    for (rows, cols) in [(1usize, 2usize), (1, 3), (2, 3), (3, 3)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).expect("platform");
        let l = solve(SolverKind::Lns, &platform, &quick_opts()).expect("LNS").solution.throughput;
        let e = solve(SolverKind::Exs, &platform, &quick_opts()).expect("EXS").solution.throughput;
        let a = solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution.throughput;
        assert!(l <= e + 1e-9, "{rows}x{cols}: LNS {l} > EXS {e}");
        assert!(l <= a + 1e-9, "{rows}x{cols}: LNS {l} > AO {a}");
        assert!(a >= e - 1e-6, "{rows}x{cols}: AO {a} fell below EXS {e} on a 2-level platform");
    }
}

#[test]
fn ao_throughput_bounded_by_continuous_ideal() {
    for (rows, cols) in [(1usize, 3usize), (3, 3)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).expect("platform");
        let ideal = continuous::solve(&platform).expect("ideal");
        let a = solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution;
        assert!(
            a.throughput <= ideal.throughput + 1e-6,
            "{rows}x{cols}: AO {} exceeded the continuous bound {}",
            a.throughput,
            ideal.throughput
        );
    }
}

#[test]
fn pco_feasible_and_close_to_ao() {
    let platform = Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).expect("platform");
    let a = solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution;
    let p = solve(SolverKind::Pco, &platform, &quick_opts()).expect("PCO").solution;
    assert!(p.feasible);
    assert!(
        (p.throughput - a.throughput).abs() < 0.05,
        "paper: AO and PCO are very close; got AO {} vs PCO {}",
        a.throughput,
        p.throughput
    );
    // And the PCO schedule's guarantee survives RK4 too.
    let simulated = rk4_peak(&platform, &p.schedule, 2);
    assert!(simulated <= platform.t_max() + 0.1);
}

#[test]
fn motivation_platform_reproduces_paper_baselines() {
    let platform = Platform::build(&PlatformSpec::motivation()).expect("platform");
    // LNS collapses to the 0.6 V floor (paper: performance 0.6).
    let l = solve(SolverKind::Lns, &platform, &quick_opts()).expect("LNS").solution;
    assert!((l.throughput - 0.6).abs() < 1e-9);
    // EXS finds one core at 1.3 V (paper: [0.6, 0.6, 1.3], performance 0.83).
    let e = solve(SolverKind::Exs, &platform, &quick_opts()).expect("EXS").solution;
    assert!((e.throughput - 0.8333).abs() < 1e-3, "EXS {}", e.throughput);
    // AO lands between EXS and the continuous ideal.
    let ideal = continuous::solve(&platform).expect("ideal");
    let a = solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution;
    assert!(a.throughput > e.throughput);
    assert!(a.throughput <= ideal.throughput + 1e-6);
}

#[test]
fn two_core_plateau_matches_paper_fig7() {
    for t_max_c in [55.0, 60.0, 65.0] {
        let platform = Platform::build(&PlatformSpec::paper(1, 2, 2, t_max_c)).expect("platform");
        for thr in [
            solve(SolverKind::Lns, &platform, &quick_opts()).expect("LNS").solution.throughput,
            solve(SolverKind::Exs, &platform, &quick_opts()).expect("EXS").solution.throughput,
            solve(SolverKind::Ao, &platform, &quick_opts()).expect("AO").solution.throughput,
        ] {
            assert!(
                (thr - 1.3).abs() < 2e-3,
                "2-core at {t_max_c} C should saturate at v_max, got {thr}"
            );
        }
    }
}

#[test]
fn infeasible_threshold_rejected_consistently() {
    let platform = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).expect("platform");
    assert!(matches!(
        solve(SolverKind::Exs, &platform, &quick_opts()),
        Err(AlgoError::Infeasible { .. })
    ));
    assert!(matches!(
        solve(SolverKind::Ao, &platform, &quick_opts()),
        Err(AlgoError::Infeasible { .. })
    ));
    // LNS reports the floor assignment as infeasible rather than erroring.
    let l = solve(SolverKind::Lns, &platform, &quick_opts()).expect("LNS returns").solution;
    assert!(!l.feasible);
}
