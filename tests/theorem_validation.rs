//! Cross-crate theorem validation on platforms *different* from the ones the
//! `mosc-sched` unit suite uses (budget cooler, responsive package, 3-D
//! stacks) — the theorems are supposed to hold for any RC model with
//! negative real spectrum, so we vary the substrate.

use mosc::prelude::*;
use mosc::sched::eval::{peak_temperature, SteadyState};
use mosc::workload::{rng, ScheduleGen};

fn platforms() -> Vec<(String, Platform)> {
    let mut out = Vec::new();
    let mut spec = PlatformSpec::paper(1, 3, 5, 65.0);
    spec.rc = RcConfig::budget_cooler();
    out.push(("3-core budget".into(), Platform::build(&spec).unwrap()));

    let mut spec = PlatformSpec::paper(2, 3, 5, 65.0);
    spec.rc = RcConfig::responsive_package();
    out.push(("6-core responsive".into(), Platform::build(&spec).unwrap()));

    let spec = PlatformSpec { layers: 2, ..PlatformSpec::paper(1, 2, 5, 65.0) };
    out.push(("4-core 3-D stack".into(), Platform::build(&spec).unwrap()));
    out
}

#[test]
fn theorem1_peak_at_period_end_across_substrates() {
    for (name, p) in platforms() {
        let gen = ScheduleGen { period: 1.5, max_segments: 4, ..ScheduleGen::default() };
        let mut r = rng(101);
        for trial in 0..6 {
            let s = gen.stepup_schedule(&mut r, p.n_cores());
            let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
            let at_end = p.thermal().max_core_temp(ss.t_start());
            let sampled = ss.peak_sampled(p.thermal(), 800).unwrap().temp;
            // Tolerance: on strongly coupled substrates a constant-voltage
            // core can keep warming briefly past the period boundary —
            // neighbors that just left their maximum power still hold hotter
            // die/spreader nodes, so conduction into the constant core lags
            // the power drop. The literal period-end claim is exact on the
            // paper's platforms (the sched suite holds it to 1e-7) but can
            // overshoot by O(10 mK) here; 0.05 K bounds that lag while still
            // catching any real ordering violation.
            assert!(
                sampled <= at_end + 5e-2,
                "[{name}] trial {trial}: sampled {sampled} > period-end {at_end}"
            );
        }
    }
}

#[test]
fn theorem2_stepup_bound_across_substrates() {
    for (name, p) in platforms() {
        let gen = ScheduleGen { period: 2.0, max_segments: 4, ..ScheduleGen::default() };
        let mut r = rng(103);
        for trial in 0..6 {
            let s = gen.arbitrary_schedule(&mut r, p.n_cores());
            let peak_any = peak_temperature(p.thermal(), p.power(), &s, Some(600)).unwrap().temp;
            let peak_up = p.peak(&s.to_step_up()).unwrap().temp;
            assert!(
                peak_any <= peak_up + 1e-3 + 1e-3 * peak_up.abs(),
                "[{name}] trial {trial}: {peak_any} > step-up bound {peak_up}"
            );
        }
    }
}

#[test]
fn theorem5_m_monotone_across_substrates() {
    for (name, p) in platforms() {
        let gen = ScheduleGen { period: 3.0, max_segments: 3, ..ScheduleGen::default() };
        let mut r = rng(107);
        let s = gen.stepup_schedule(&mut r, p.n_cores());
        let mut prev = f64::INFINITY;
        for m in [1usize, 2, 4, 8, 16, 32] {
            let peak = p.peak(&s.oscillated(m)).unwrap().temp;
            assert!(peak <= prev + 1e-7, "[{name}] m={m}: {peak} > {prev}");
            prev = peak;
        }
    }
}

#[test]
fn theorem3_constant_beats_split_across_substrates() {
    for (name, p) in platforms() {
        let n = p.n_cores();
        let period = 0.8;
        let v_e = 1.0;
        let (v_l, v_h) = (0.8, 1.2);
        let x = (v_h - v_e) / (v_h - v_l);
        let mut constant = vec![CoreSchedule::constant(0.9, period).unwrap(); n];
        let mut split = constant.clone();
        constant[0] = CoreSchedule::constant(v_e, period).unwrap();
        split[0] = CoreSchedule::new(vec![
            Segment::new(v_l, x * period),
            Segment::new(v_h, (1.0 - x) * period),
        ])
        .unwrap();
        let pc = p.peak(&Schedule::new(constant).unwrap()).unwrap().temp;
        let ps = p.peak(&Schedule::new(split).unwrap()).unwrap().temp;
        assert!(pc <= ps + 1e-7, "[{name}]: constant {pc} > split {ps}");
    }
}

#[test]
fn stable_status_is_a_fixed_point_everywhere() {
    // Eq. (4)'s defining property on every substrate: advancing one full
    // period from T_ss(0) returns exactly to T_ss(0).
    for (name, p) in platforms() {
        let gen = ScheduleGen { period: 0.7, max_segments: 5, ..ScheduleGen::default() };
        let mut r = rng(109);
        let s = gen.arbitrary_schedule(&mut r, p.n_cores());
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let back = ss.at_interval_ends().last().unwrap();
        assert!(
            back.max_abs_diff(ss.t_start()) < 1e-8,
            "[{name}] fixed point violated by {}",
            back.max_abs_diff(ss.t_start())
        );
    }
}
